// Package geo provides the geographic substrate for the observatory:
// countries, regions, coordinates, and great-circle math.
//
// The package embeds a static gazetteer of all 54 African countries plus a
// set of comparison countries in Europe, the Americas, and Asia-Pacific.
// Coordinates are those of each country's primary interconnection city
// (usually the capital or the main cable landing city), which is what
// matters for latency modeling.
package geo

import (
	"fmt"
	"math"
)

// Region identifies a macro-region used throughout the paper's analysis.
// Africa is split into its five UN subregions because the paper reports
// most results at that granularity; the rest of the world is kept at
// continent granularity.
type Region int

const (
	RegionUnknown Region = iota
	AfricaNorthern
	AfricaWestern
	AfricaCentral
	AfricaEastern
	AfricaSouthern
	Europe
	NorthAmerica
	SouthAmerica
	AsiaPacific
)

var regionNames = map[Region]string{
	RegionUnknown:  "Unknown",
	AfricaNorthern: "Northern Africa",
	AfricaWestern:  "Western Africa",
	AfricaCentral:  "Central Africa",
	AfricaEastern:  "Eastern Africa",
	AfricaSouthern: "Southern Africa",
	Europe:         "Europe",
	NorthAmerica:   "N. America",
	SouthAmerica:   "S. America",
	AsiaPacific:    "Asia-Pacific",
}

// String returns the human-readable region name used in figures.
func (r Region) String() string {
	if s, ok := regionNames[r]; ok {
		return s
	}
	return fmt.Sprintf("Region(%d)", int(r))
}

// IsAfrica reports whether the region is one of Africa's five subregions.
func (r Region) IsAfrica() bool {
	switch r {
	case AfricaNorthern, AfricaWestern, AfricaCentral, AfricaEastern, AfricaSouthern:
		return true
	}
	return false
}

// AfricanRegions lists Africa's five subregions in the order figures
// present them.
func AfricanRegions() []Region {
	return []Region{AfricaNorthern, AfricaWestern, AfricaCentral, AfricaEastern, AfricaSouthern}
}

// AllRegions lists every region, African subregions first.
func AllRegions() []Region {
	return []Region{
		AfricaNorthern, AfricaWestern, AfricaCentral, AfricaEastern, AfricaSouthern,
		Europe, NorthAmerica, SouthAmerica, AsiaPacific,
	}
}

// Coord is a WGS84 coordinate in degrees.
type Coord struct {
	Lat float64
	Lng float64
}

// Country describes one country in the gazetteer.
type Country struct {
	ISO2       string // ISO 3166-1 alpha-2 code
	Name       string
	Region     Region
	Hub        Coord // primary interconnection city (capital or landing city)
	Coastal    bool  // has a sea coast (can host a cable landing station)
	Population int   // millions, rough 2024 figure; used to size site catalogs
}

// IsAfrican reports whether the country is on the African continent.
func (c *Country) IsAfrican() bool { return c.Region.IsAfrica() }

// earthRadiusKm is the mean Earth radius.
const earthRadiusKm = 6371.0

// DistanceKm returns the great-circle distance between two coordinates
// using the haversine formula.
func DistanceKm(a, b Coord) float64 {
	const degToRad = math.Pi / 180
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLng := (b.Lng - a.Lng) * degToRad
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLng/2)*math.Sin(dLng/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// PropagationDelayMs returns the one-way speed-of-light-in-fiber delay for
// a path of the given length. Fiber propagation is roughly 2/3 c, i.e.
// ~200 km per millisecond; real paths are longer than great-circle, which
// callers account for with a stretch factor.
func PropagationDelayMs(km float64) float64 { return km / 200.0 }

// Lookup returns the country with the given ISO2 code.
func Lookup(iso2 string) (*Country, bool) {
	c, ok := byISO[iso2]
	return c, ok
}

// MustLookup is Lookup for codes known at compile time; it panics on a
// bad code, which indicates a programming error, not an input error.
func MustLookup(iso2 string) *Country {
	c, ok := byISO[iso2]
	if !ok {
		panic("geo: unknown country code " + iso2)
	}
	return c
}

// Countries returns all countries in the gazetteer in a stable order
// (African regions first, then comparison regions; alphabetical by code
// within a region).
func Countries() []*Country {
	out := make([]*Country, len(ordered))
	copy(out, ordered)
	return out
}

// CountriesIn returns the countries of one region in stable order.
func CountriesIn(r Region) []*Country {
	var out []*Country
	for _, c := range ordered {
		if c.Region == r {
			out = append(out, c)
		}
	}
	return out
}

// AfricanCountries returns all 54 African countries in stable order.
func AfricanCountries() []*Country {
	var out []*Country
	for _, c := range ordered {
		if c.IsAfrican() {
			out = append(out, c)
		}
	}
	return out
}
