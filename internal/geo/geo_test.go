package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGazetteerIntegrity(t *testing.T) {
	if got := len(AfricanCountries()); got != 54 {
		t.Fatalf("African countries = %d, want 54", got)
	}
	seen := map[string]bool{}
	for _, c := range Countries() {
		if len(c.ISO2) != 2 {
			t.Errorf("bad ISO2 %q", c.ISO2)
		}
		if seen[c.ISO2] {
			t.Errorf("duplicate ISO2 %q", c.ISO2)
		}
		seen[c.ISO2] = true
		if c.Region == RegionUnknown {
			t.Errorf("%s has unknown region", c.ISO2)
		}
		if c.Hub.Lat < -90 || c.Hub.Lat > 90 || c.Hub.Lng < -180 || c.Hub.Lng > 180 {
			t.Errorf("%s has out-of-range hub %v", c.ISO2, c.Hub)
		}
		if c.Population <= 0 {
			t.Errorf("%s has non-positive population", c.ISO2)
		}
	}
}

func TestRegionCounts(t *testing.T) {
	want := map[Region]int{
		AfricaNorthern: 6,
		AfricaWestern:  16,
		AfricaCentral:  9,
		AfricaEastern:  17,
		AfricaSouthern: 6,
	}
	for r, n := range want {
		if got := len(CountriesIn(r)); got != n {
			t.Errorf("%s: %d countries, want %d", r, got, n)
		}
	}
}

func TestRegionIsAfrica(t *testing.T) {
	for _, r := range AfricanRegions() {
		if !r.IsAfrica() {
			t.Errorf("%s should be African", r)
		}
	}
	for _, r := range []Region{Europe, NorthAmerica, SouthAmerica, AsiaPacific, RegionUnknown} {
		if r.IsAfrica() {
			t.Errorf("%s should not be African", r)
		}
	}
}

func TestRegionString(t *testing.T) {
	if Europe.String() != "Europe" {
		t.Errorf("Europe.String() = %q", Europe.String())
	}
	if Region(99).String() == "" {
		t.Error("unknown region should still stringify")
	}
}

func TestLookup(t *testing.T) {
	c, ok := Lookup("RW")
	if !ok || c.Name != "Rwanda" {
		t.Fatalf("Lookup(RW) = %v, %v", c, ok)
	}
	if _, ok := Lookup("XX"); ok {
		t.Fatal("Lookup(XX) should fail")
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup should panic on unknown code")
		}
	}()
	MustLookup("ZZ")
}

func TestDistanceKnownPairs(t *testing.T) {
	cases := []struct {
		a, b    string
		km, tol float64
	}{
		{"ZA", "KE", 2900, 350}, // Johannesburg - Nairobi
		{"NG", "GB", 5000, 500}, // Lagos - London
		{"EG", "FR", 2700, 400}, // Cairo - Marseille
		{"RW", "BI", 160, 100},  // Kigali - Bujumbura
	}
	for _, c := range cases {
		d := DistanceKm(MustLookup(c.a).Hub, MustLookup(c.b).Hub)
		if math.Abs(d-c.km) > c.tol {
			t.Errorf("distance %s-%s = %.0f km, want %.0f±%.0f", c.a, c.b, d, c.km, c.tol)
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	// Symmetry and identity, over random coordinates.
	f := func(lat1, lng1, lat2, lng2 float64) bool {
		a := Coord{Lat: math.Mod(lat1, 90), Lng: math.Mod(lng1, 180)}
		b := Coord{Lat: math.Mod(lat2, 90), Lng: math.Mod(lng2, 180)}
		d1 := DistanceKm(a, b)
		d2 := DistanceKm(b, a)
		return d1 >= 0 && math.Abs(d1-d2) < 1e-6 && DistanceKm(a, a) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	cs := Countries()
	for i := 0; i < len(cs)-2; i += 3 {
		a, b, c := cs[i].Hub, cs[i+1].Hub, cs[i+2].Hub
		if DistanceKm(a, c) > DistanceKm(a, b)+DistanceKm(b, c)+1e-6 {
			t.Errorf("triangle inequality violated for %s %s %s", cs[i].ISO2, cs[i+1].ISO2, cs[i+2].ISO2)
		}
	}
}

func TestPropagationDelay(t *testing.T) {
	if d := PropagationDelayMs(200); math.Abs(d-1.0) > 1e-9 {
		t.Errorf("200 km should be 1 ms, got %v", d)
	}
	if d := PropagationDelayMs(0); d != 0 {
		t.Errorf("0 km should be 0 ms, got %v", d)
	}
}

func TestCountriesStableOrder(t *testing.T) {
	a := Countries()
	b := Countries()
	for i := range a {
		if a[i].ISO2 != b[i].ISO2 {
			t.Fatal("Countries() order is not stable")
		}
	}
	// Mutating the returned slice must not affect the gazetteer.
	a[0] = nil
	if Countries()[0] == nil {
		t.Fatal("Countries() exposes internal storage")
	}
}

func TestAllRegionsCoversEveryCountry(t *testing.T) {
	total := 0
	for _, r := range AllRegions() {
		total += len(CountriesIn(r))
	}
	if total != len(Countries()) {
		t.Fatalf("regions cover %d countries, gazetteer has %d", total, len(Countries()))
	}
}
