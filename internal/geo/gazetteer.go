package geo

// The static gazetteer. Hub coordinates are the country's primary
// interconnection city: the capital for landlocked countries, the main
// cable-landing city for coastal ones (e.g. Lagos for Nigeria, Mombasa is
// modeled as Kenya's landing separately in the cable package while
// Nairobi remains the hub). Populations are rough 2024 figures in
// millions and only drive relative catalog sizes.

var gazetteer = []Country{
	// --- Northern Africa (6) ---
	{ISO2: "DZ", Name: "Algeria", Region: AfricaNorthern, Hub: Coord{36.75, 3.06}, Coastal: true, Population: 46},
	{ISO2: "EG", Name: "Egypt", Region: AfricaNorthern, Hub: Coord{30.04, 31.24}, Coastal: true, Population: 113},
	{ISO2: "LY", Name: "Libya", Region: AfricaNorthern, Hub: Coord{32.89, 13.19}, Coastal: true, Population: 7},
	{ISO2: "MA", Name: "Morocco", Region: AfricaNorthern, Hub: Coord{33.57, -7.59}, Coastal: true, Population: 38},
	{ISO2: "SD", Name: "Sudan", Region: AfricaNorthern, Hub: Coord{15.50, 32.56}, Coastal: true, Population: 49},
	{ISO2: "TN", Name: "Tunisia", Region: AfricaNorthern, Hub: Coord{36.81, 10.18}, Coastal: true, Population: 12},

	// --- Western Africa (16) ---
	{ISO2: "BJ", Name: "Benin", Region: AfricaWestern, Hub: Coord{6.37, 2.39}, Coastal: true, Population: 14},
	{ISO2: "BF", Name: "Burkina Faso", Region: AfricaWestern, Hub: Coord{12.37, -1.53}, Coastal: false, Population: 23},
	{ISO2: "CV", Name: "Cabo Verde", Region: AfricaWestern, Hub: Coord{14.93, -23.51}, Coastal: true, Population: 1},
	{ISO2: "CI", Name: "Cote d'Ivoire", Region: AfricaWestern, Hub: Coord{5.36, -4.01}, Coastal: true, Population: 29},
	{ISO2: "GM", Name: "Gambia", Region: AfricaWestern, Hub: Coord{13.45, -16.58}, Coastal: true, Population: 3},
	{ISO2: "GH", Name: "Ghana", Region: AfricaWestern, Hub: Coord{5.56, -0.20}, Coastal: true, Population: 34},
	{ISO2: "GN", Name: "Guinea", Region: AfricaWestern, Hub: Coord{9.54, -13.68}, Coastal: true, Population: 14},
	{ISO2: "GW", Name: "Guinea-Bissau", Region: AfricaWestern, Hub: Coord{11.86, -15.60}, Coastal: true, Population: 2},
	{ISO2: "LR", Name: "Liberia", Region: AfricaWestern, Hub: Coord{6.30, -10.80}, Coastal: true, Population: 5},
	{ISO2: "ML", Name: "Mali", Region: AfricaWestern, Hub: Coord{12.64, -8.00}, Coastal: false, Population: 23},
	{ISO2: "MR", Name: "Mauritania", Region: AfricaWestern, Hub: Coord{18.08, -15.98}, Coastal: true, Population: 5},
	{ISO2: "NE", Name: "Niger", Region: AfricaWestern, Hub: Coord{13.51, 2.13}, Coastal: false, Population: 27},
	{ISO2: "NG", Name: "Nigeria", Region: AfricaWestern, Hub: Coord{6.45, 3.39}, Coastal: true, Population: 224},
	{ISO2: "SN", Name: "Senegal", Region: AfricaWestern, Hub: Coord{14.72, -17.47}, Coastal: true, Population: 18},
	{ISO2: "SL", Name: "Sierra Leone", Region: AfricaWestern, Hub: Coord{8.48, -13.23}, Coastal: true, Population: 9},
	{ISO2: "TG", Name: "Togo", Region: AfricaWestern, Hub: Coord{6.13, 1.22}, Coastal: true, Population: 9},

	// --- Central Africa (9) ---
	{ISO2: "AO", Name: "Angola", Region: AfricaCentral, Hub: Coord{-8.84, 13.23}, Coastal: true, Population: 36},
	{ISO2: "CM", Name: "Cameroon", Region: AfricaCentral, Hub: Coord{4.05, 9.70}, Coastal: true, Population: 28},
	{ISO2: "CF", Name: "Central African Republic", Region: AfricaCentral, Hub: Coord{4.39, 18.56}, Coastal: false, Population: 6},
	{ISO2: "TD", Name: "Chad", Region: AfricaCentral, Hub: Coord{12.13, 15.06}, Coastal: false, Population: 18},
	{ISO2: "CG", Name: "Congo", Region: AfricaCentral, Hub: Coord{-4.79, 11.86}, Coastal: true, Population: 6},
	{ISO2: "CD", Name: "DR Congo", Region: AfricaCentral, Hub: Coord{-4.32, 15.31}, Coastal: true, Population: 102},
	{ISO2: "GQ", Name: "Equatorial Guinea", Region: AfricaCentral, Hub: Coord{3.75, 8.78}, Coastal: true, Population: 2},
	{ISO2: "GA", Name: "Gabon", Region: AfricaCentral, Hub: Coord{0.39, 9.45}, Coastal: true, Population: 2},
	{ISO2: "ST", Name: "Sao Tome and Principe", Region: AfricaCentral, Hub: Coord{0.34, 6.73}, Coastal: true, Population: 1},

	// --- Eastern Africa (17) ---
	{ISO2: "BI", Name: "Burundi", Region: AfricaEastern, Hub: Coord{-3.38, 29.36}, Coastal: false, Population: 13},
	{ISO2: "KM", Name: "Comoros", Region: AfricaEastern, Hub: Coord{-11.70, 43.26}, Coastal: true, Population: 1},
	{ISO2: "DJ", Name: "Djibouti", Region: AfricaEastern, Hub: Coord{11.59, 43.15}, Coastal: true, Population: 1},
	{ISO2: "ER", Name: "Eritrea", Region: AfricaEastern, Hub: Coord{15.32, 38.93}, Coastal: true, Population: 4},
	{ISO2: "ET", Name: "Ethiopia", Region: AfricaEastern, Hub: Coord{9.03, 38.74}, Coastal: false, Population: 127},
	{ISO2: "KE", Name: "Kenya", Region: AfricaEastern, Hub: Coord{-1.29, 36.82}, Coastal: true, Population: 55},
	{ISO2: "MG", Name: "Madagascar", Region: AfricaEastern, Hub: Coord{-18.88, 47.51}, Coastal: true, Population: 30},
	{ISO2: "MW", Name: "Malawi", Region: AfricaEastern, Hub: Coord{-13.97, 33.79}, Coastal: false, Population: 21},
	{ISO2: "MU", Name: "Mauritius", Region: AfricaEastern, Hub: Coord{-20.16, 57.50}, Coastal: true, Population: 1},
	{ISO2: "MZ", Name: "Mozambique", Region: AfricaEastern, Hub: Coord{-25.97, 32.57}, Coastal: true, Population: 34},
	{ISO2: "RW", Name: "Rwanda", Region: AfricaEastern, Hub: Coord{-1.95, 30.06}, Coastal: false, Population: 14},
	{ISO2: "SC", Name: "Seychelles", Region: AfricaEastern, Hub: Coord{-4.62, 55.45}, Coastal: true, Population: 1},
	{ISO2: "SO", Name: "Somalia", Region: AfricaEastern, Hub: Coord{2.05, 45.32}, Coastal: true, Population: 18},
	{ISO2: "SS", Name: "South Sudan", Region: AfricaEastern, Hub: Coord{4.85, 31.58}, Coastal: false, Population: 11},
	{ISO2: "TZ", Name: "Tanzania", Region: AfricaEastern, Hub: Coord{-6.79, 39.21}, Coastal: true, Population: 67},
	{ISO2: "UG", Name: "Uganda", Region: AfricaEastern, Hub: Coord{0.35, 32.58}, Coastal: false, Population: 48},
	{ISO2: "ZM", Name: "Zambia", Region: AfricaEastern, Hub: Coord{-15.39, 28.32}, Coastal: false, Population: 20},

	// --- Southern Africa (6) ---
	{ISO2: "BW", Name: "Botswana", Region: AfricaSouthern, Hub: Coord{-24.65, 25.91}, Coastal: false, Population: 3},
	{ISO2: "SZ", Name: "Eswatini", Region: AfricaSouthern, Hub: Coord{-26.31, 31.14}, Coastal: false, Population: 1},
	{ISO2: "LS", Name: "Lesotho", Region: AfricaSouthern, Hub: Coord{-29.31, 27.48}, Coastal: false, Population: 2},
	{ISO2: "NA", Name: "Namibia", Region: AfricaSouthern, Hub: Coord{-22.56, 17.08}, Coastal: true, Population: 3},
	{ISO2: "ZA", Name: "South Africa", Region: AfricaSouthern, Hub: Coord{-26.20, 28.05}, Coastal: true, Population: 60},
	// Zimbabwe is UN Eastern Africa but the paper's maturity analysis
	// groups it with the southern cone; we follow the UN scheme for the
	// other countries and keep Zimbabwe southern as SADC practice does.
	{ISO2: "ZW", Name: "Zimbabwe", Region: AfricaSouthern, Hub: Coord{-17.83, 31.05}, Coastal: false, Population: 16},

	// --- Europe (10 comparison countries; the transit hubs matter) ---
	{ISO2: "DE", Name: "Germany", Region: Europe, Hub: Coord{50.11, 8.68}, Coastal: true, Population: 84}, // Frankfurt
	{ISO2: "FR", Name: "France", Region: Europe, Hub: Coord{43.30, 5.37}, Coastal: true, Population: 68},  // Marseille
	{ISO2: "GB", Name: "United Kingdom", Region: Europe, Hub: Coord{51.51, -0.13}, Coastal: true, Population: 68},
	{ISO2: "NL", Name: "Netherlands", Region: Europe, Hub: Coord{52.37, 4.90}, Coastal: true, Population: 18},
	{ISO2: "PT", Name: "Portugal", Region: Europe, Hub: Coord{38.72, -9.14}, Coastal: true, Population: 10},
	{ISO2: "ES", Name: "Spain", Region: Europe, Hub: Coord{40.42, -3.70}, Coastal: true, Population: 48},
	{ISO2: "IT", Name: "Italy", Region: Europe, Hub: Coord{45.46, 9.19}, Coastal: true, Population: 59},
	{ISO2: "SE", Name: "Sweden", Region: Europe, Hub: Coord{59.33, 18.07}, Coastal: true, Population: 10},
	{ISO2: "PL", Name: "Poland", Region: Europe, Hub: Coord{52.23, 21.01}, Coastal: true, Population: 38},
	{ISO2: "GR", Name: "Greece", Region: Europe, Hub: Coord{37.98, 23.73}, Coastal: true, Population: 10},

	// --- North America (4) ---
	{ISO2: "US", Name: "United States", Region: NorthAmerica, Hub: Coord{39.05, -77.47}, Coastal: true, Population: 335}, // Ashburn
	{ISO2: "CA", Name: "Canada", Region: NorthAmerica, Hub: Coord{43.65, -79.38}, Coastal: true, Population: 39},
	{ISO2: "MX", Name: "Mexico", Region: NorthAmerica, Hub: Coord{19.43, -99.13}, Coastal: true, Population: 128},
	{ISO2: "PA", Name: "Panama", Region: NorthAmerica, Hub: Coord{8.98, -79.52}, Coastal: true, Population: 4},

	// --- South America (6) ---
	{ISO2: "BR", Name: "Brazil", Region: SouthAmerica, Hub: Coord{-23.55, -46.63}, Coastal: true, Population: 216},
	{ISO2: "AR", Name: "Argentina", Region: SouthAmerica, Hub: Coord{-34.60, -58.38}, Coastal: true, Population: 46},
	{ISO2: "CL", Name: "Chile", Region: SouthAmerica, Hub: Coord{-33.45, -70.67}, Coastal: true, Population: 20},
	{ISO2: "CO", Name: "Colombia", Region: SouthAmerica, Hub: Coord{4.71, -74.07}, Coastal: true, Population: 52},
	{ISO2: "PE", Name: "Peru", Region: SouthAmerica, Hub: Coord{-12.05, -77.04}, Coastal: true, Population: 34},
	{ISO2: "EC", Name: "Ecuador", Region: SouthAmerica, Hub: Coord{-0.18, -78.47}, Coastal: true, Population: 18},

	// --- Asia-Pacific (8) ---
	{ISO2: "SG", Name: "Singapore", Region: AsiaPacific, Hub: Coord{1.35, 103.82}, Coastal: true, Population: 6},
	{ISO2: "IN", Name: "India", Region: AsiaPacific, Hub: Coord{19.08, 72.88}, Coastal: true, Population: 1428},
	{ISO2: "JP", Name: "Japan", Region: AsiaPacific, Hub: Coord{35.68, 139.65}, Coastal: true, Population: 124},
	{ISO2: "AU", Name: "Australia", Region: AsiaPacific, Hub: Coord{-33.87, 151.21}, Coastal: true, Population: 26},
	{ISO2: "ID", Name: "Indonesia", Region: AsiaPacific, Hub: Coord{-6.21, 106.85}, Coastal: true, Population: 277},
	{ISO2: "MY", Name: "Malaysia", Region: AsiaPacific, Hub: Coord{3.14, 101.69}, Coastal: true, Population: 34},
	{ISO2: "PH", Name: "Philippines", Region: AsiaPacific, Hub: Coord{14.60, 120.98}, Coastal: true, Population: 117},
	{ISO2: "AE", Name: "United Arab Emirates", Region: AsiaPacific, Hub: Coord{25.20, 55.27}, Coastal: true, Population: 10},
}

var (
	byISO   map[string]*Country
	ordered []*Country
)

func init() {
	byISO = make(map[string]*Country, len(gazetteer))
	ordered = make([]*Country, 0, len(gazetteer))
	for i := range gazetteer {
		c := &gazetteer[i]
		if _, dup := byISO[c.ISO2]; dup {
			panic("geo: duplicate country code " + c.ISO2)
		}
		byISO[c.ISO2] = c
		ordered = append(ordered, c)
	}
}
