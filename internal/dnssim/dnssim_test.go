package dnssim

import (
	"math"
	"testing"

	"github.com/afrinet/observatory/internal/bgp"
	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/topology"
)

var (
	testTopo = topology.Generate(topology.DefaultParams())
	testNet  = netsim.New(testTopo, bgp.New(testTopo), 42)
	testDNS  = New(testNet, 42)
)

func TestResolverForDeterministic(t *testing.T) {
	other := New(testNet, 42)
	for _, asn := range testTopo.ASNs()[:100] {
		if testDNS.ResolverFor(asn) != other.ResolverFor(asn) {
			t.Fatalf("resolver assignment differs for AS%d", asn)
		}
	}
}

func TestResolverMixMatchesModel(t *testing.T) {
	for _, region := range geo.AfricanRegions() {
		us := testDNS.MeasureResolverUse(region)
		if us.Samples < 10 {
			continue
		}
		mix := mixes[region]
		if math.Abs(us.SameCountry-mix.local) > 0.20 {
			t.Errorf("%s same-country %.2f far from model %.2f", region, us.SameCountry, mix.local)
		}
		sum := us.SameCountry + us.OtherCountry + us.Cloud
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s shares sum to %.3f", region, sum)
		}
	}
}

func TestSouthernMostLocal(t *testing.T) {
	south := testDNS.MeasureResolverUse(geo.AfricaSouthern)
	west := testDNS.MeasureResolverUse(geo.AfricaWestern)
	if south.SameCountry <= west.SameCountry {
		t.Fatalf("Southern (%.2f) should use local resolvers more than Western (%.2f)",
			south.SameCountry, west.SameCountry)
	}
}

func TestResolveBaselineSucceeds(t *testing.T) {
	ok, total := 0, 0
	for _, c := range geo.AfricanCountries()[:20] {
		for _, asn := range testTopo.ASesIn(c.ISO2) {
			as := testTopo.ASes[asn]
			if as.Type != topology.ASMobileCarrier && as.Type != topology.ASFixedISP {
				continue
			}
			total++
			res := testDNS.Resolve(asn, "site0."+c.ISO2, c.ISO2)
			if res.OK {
				ok++
				if res.LatencyMs <= 0 {
					t.Fatalf("zero latency on success: %+v", res)
				}
			}
			break
		}
	}
	if total == 0 || float64(ok)/float64(total) < 0.95 {
		t.Fatalf("baseline resolution success %d/%d; should be nearly universal", ok, total)
	}
}

func TestResolveWithPolicyForcesLocal(t *testing.T) {
	for _, asn := range testTopo.ASesIn("NG") {
		as := testTopo.ASes[asn]
		if as.Type != topology.ASMobileCarrier {
			continue
		}
		res := testDNS.ResolveWithPolicy(asn, "site1.NG", "NG", true, false)
		if !res.OK {
			t.Fatalf("forced-local resolution failed: %+v", res)
		}
		if res.Resolver.Kind != ResolverLocalISP || res.Resolver.Country != "NG" {
			t.Fatalf("policy did not force a local resolver: %+v", res.Resolver)
		}
		return
	}
	t.Fatal("no Nigerian mobile carrier")
}

func TestAnycastPrefersNearbySite(t *testing.T) {
	// A South African client must be served with in-country latency by a
	// ZA-region operator — either from the ZA anycast site or straight
	// off the operator's exchange off-net. (The site AS may carry the
	// operator's home-country label; what matters is the latency.)
	var za topology.ASN
	for _, a := range testTopo.ASesIn("ZA") {
		if testTopo.ASes[a].Type == topology.ASFixedISP {
			za = a
			break
		}
	}
	var withZA topology.ASN
	for _, cn := range testDNS.cloudASNs {
		if hasZARegion(testTopo.ASes[cn].Name) {
			withZA = cn
			break
		}
	}
	if withZA == 0 {
		t.Fatal("fixture operator missing")
	}
	site, ok := testDNS.AnycastSite(za, withZA)
	if !ok {
		t.Fatal("anycast unreachable")
	}
	rtt, ok := testNet.RTTBetween(za, site)
	if !ok || rtt > 40 {
		t.Fatalf("ZA client served at %.1f ms; a ZA-region operator should be local (<40 ms)", rtt)
	}
}

func TestAuthorityPlacementDeterministic(t *testing.T) {
	a := testDNS.AuthorityFor("site3.KE", "KE")
	b := testDNS.AuthorityFor("site3.KE", "KE")
	if a != b {
		t.Fatal("authoritative placement not deterministic")
	}
	if a.ASN == 0 {
		t.Fatal("no placement")
	}
}

func TestAuthorityLocalShare(t *testing.T) {
	local, total := 0, 0
	for i := 0; i < 60; i++ {
		loc := testDNS.AuthorityFor(domainName("ZA", i), "ZA")
		total++
		if loc.Country == "ZA" {
			local++
		}
	}
	share := float64(local) / float64(total)
	want := mixes[geo.AfricaSouthern].authLocal
	if math.Abs(share-want) > 0.25 {
		t.Fatalf("ZA auth-local share %.2f far from model %.2f", share, want)
	}
}

func domainName(cc string, i int) string {
	return "site" + string(rune('0'+i%10)) + string(rune('a'+i/10)) + "." + cc
}

func TestResolutionFailsWhenIsolated(t *testing.T) {
	// Cut every subsea cable: a client whose resolver or authoritative
	// sits overseas must fail.
	defer testNet.RestoreAll()
	for _, id := range testTopo.CableIDs() {
		testNet.CutCable(id)
	}
	failures := 0
	attempts := 0
	for _, c := range []string{"NG", "GH", "CI", "SN", "CM"} {
		for _, asn := range testTopo.ASesIn(c) {
			as := testTopo.ASes[asn]
			if as.Type != topology.ASMobileCarrier && as.Type != topology.ASFixedISP {
				continue
			}
			attempts++
			if res := testDNS.Resolve(asn, "site2."+c, c); !res.OK {
				failures++
				if res.FailReason == "" {
					t.Fatal("failure without a reason")
				}
			}
		}
	}
	if attempts == 0 {
		t.Fatal("no attempts")
	}
	if failures == 0 {
		t.Fatal("total cable isolation should break some resolutions")
	}
}

func TestIsClientNetwork(t *testing.T) {
	if !isClientNetwork(&topology.AS{Type: topology.ASMobileCarrier}) {
		t.Fatal("mobile is a client network")
	}
	if isClientNetwork(&topology.AS{Type: topology.ASTransit}) {
		t.Fatal("transit is not a client network")
	}
	if isClientNetwork(&topology.AS{Type: topology.ASIXPRouteServer}) {
		t.Fatal("route server is not a client network")
	}
}

func TestResolverKindStrings(t *testing.T) {
	if ResolverLocalISP.String() != "same-country" ||
		ResolverOtherCountry.String() != "other-country" ||
		ResolverCloud.String() != "cloud" {
		t.Fatal("kind strings changed")
	}
}
