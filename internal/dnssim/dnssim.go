// Package dnssim models the DNS dependency structure the paper's
// Section 5.2 analyzes: which recursive resolver each client network
// uses (an in-country ISP resolver, a resolver outsourced to another
// country, or an anycast public cloud resolver), where authoritative
// servers sit, and what happens to resolution when cables are cut.
//
// The per-region resolver mixes are the generative model behind the
// paper's Figure 2c (APNIC resolver-use data): most African regions lean
// heavily on out-of-country and cloud resolvers, and the public clouds'
// only African sites are in South Africa.
//
// Since PR 10 the package is organized around composable resolver
// chains (chain.go): Resolver is an interface, links are registered by
// name and stacked per client, and the legacy entry points below
// (ResolverFor, AuthorityFor, Resolve) are thin shims over the
// canonical per-country chains.
package dnssim

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/topology"
)

// ResolverKind classifies where a client's recursive resolver runs.
type ResolverKind int

const (
	ResolverLocalISP     ResolverKind = iota // in the client's country
	ResolverOtherCountry                     // outsourced to another country
	ResolverCloud                            // anycast public resolver
)

func (k ResolverKind) String() string {
	switch k {
	case ResolverLocalISP:
		return "same-country"
	case ResolverOtherCountry:
		return "other-country"
	default:
		return "cloud"
	}
}

// Assignment is a recursive resolver assignment for one client network
// (the struct the pre-chain API called Resolver; Resolver is now the
// chain interface in chain.go).
type Assignment struct {
	Kind    ResolverKind
	ASN     topology.ASN // hosting AS (for cloud: the anycast AS)
	Country string       // hosting country ("" for anycast until resolved)
}

// resolverMix is the per-region client mix (fractions sum to 1).
type resolverMix struct {
	local, other, cloud float64
	// otherEU is, within the "other country" share, the fraction
	// outsourced outside Africa (the rest goes to regional hubs).
	otherEU float64
	// authLocal is the share of in-country domains whose authoritative
	// DNS is hosted in-country.
	authLocal float64
}

var mixes = map[geo.Region]resolverMix{
	geo.AfricaNorthern: {local: 0.55, other: 0.15, cloud: 0.30, otherEU: 0.80, authLocal: 0.30},
	geo.AfricaWestern:  {local: 0.25, other: 0.32, cloud: 0.43, otherEU: 0.65, authLocal: 0.15},
	geo.AfricaCentral:  {local: 0.18, other: 0.37, cloud: 0.45, otherEU: 0.70, authLocal: 0.10},
	geo.AfricaEastern:  {local: 0.42, other: 0.20, cloud: 0.38, otherEU: 0.45, authLocal: 0.25},
	geo.AfricaSouthern: {local: 0.65, other: 0.05, cloud: 0.30, otherEU: 0.50, authLocal: 0.55},
	geo.Europe:         {local: 0.72, other: 0.05, cloud: 0.23, otherEU: 0.0, authLocal: 0.85},
	geo.NorthAmerica:   {local: 0.70, other: 0.04, cloud: 0.26, otherEU: 0.0, authLocal: 0.85},
	geo.SouthAmerica:   {local: 0.55, other: 0.12, cloud: 0.33, otherEU: 0.40, authLocal: 0.55},
	geo.AsiaPacific:    {local: 0.60, other: 0.10, cloud: 0.30, otherEU: 0.30, authLocal: 0.60},
}

// System is the DNS layer bound to a data plane.
type System struct {
	net  *netsim.Net
	topo *topology.Topology
	seed uint64

	cloudASNs []topology.ASN // anycast resolver operators
	// cloudSites lists each cloud resolver's instance locations
	// (AS they are announced from). Only South Africa hosts African
	// instances, per Section 5.2.
	cloudSites map[topology.ASN][]topology.ASN
	// mu guards the lazily-filled memo maps below. All three memoize
	// pure functions of the seed, so concurrent fills race only on who
	// stores the (identical) value first — and none of them needs
	// invalidating when the data plane changes.
	mu          sync.RWMutex
	assignments map[topology.ASN]Assignment
	authMemo    map[string]AuthLocation
	chains      map[topology.ASN]Resolver

	// memo holds every reachability-dependent cache (anycast site
	// selection, whole-chain answers), stamped with the (routing
	// generation, failure epoch) it was computed under — the scoping
	// pattern netsim's path memos use. A link flap swaps this pointer on
	// the next query; the seed-pure maps above survive untouched.
	memo atomic.Pointer[chainMemo]
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// pick maps a hash onto [0,n) without the sign pitfalls of int casts.
func pick(h uint64, n int) int { return int(h % uint64(n)) }

func (s *System) f(vals ...uint64) float64 {
	h := s.seed
	for _, v := range vals {
		h = splitmix(h ^ v)
	}
	return float64(h>>11) / float64(1<<53)
}

// New builds the DNS layer. Resolver assignments are deterministic in
// the seed.
func New(n *netsim.Net, seed int64) *System {
	s := &System{
		net:         n,
		topo:        n.Topology(),
		seed:        uint64(seed),
		cloudSites:  make(map[topology.ASN][]topology.ASN),
		assignments: make(map[topology.ASN]Assignment),
		authMemo:    make(map[string]AuthLocation),
		chains:      make(map[topology.ASN]Resolver),
	}
	// Cloud resolvers run on the cloud/content ASes that operate
	// public resolver services.
	for _, asn := range s.topo.ASNs() {
		as := s.topo.ASes[asn]
		if as.Type != topology.ASCloud && as.Type != topology.ASContent {
			continue
		}
		// The resolver operators in the model: the big CDN-C-style
		// resolver and the three clouds.
		switch as.Name {
		case "GlobalCDN-C", "CloudOne", "CloudTwo", "CloudThree":
			s.cloudASNs = append(s.cloudASNs, asn)
		}
	}
	sort.Slice(s.cloudASNs, func(i, j int) bool { return s.cloudASNs[i] < s.cloudASNs[j] })

	// Anycast sites: the operator AS itself (US), a European presence,
	// and — only for operators with a South African region — a ZA site.
	// Sites are represented by the AS whose location serves the
	// instance; routing to an anycast site is "nearest reachable".
	for _, cn := range s.cloudASNs {
		as := s.topo.ASes[cn]
		sites := []topology.ASN{cn} // home (US)
		// European site: the operator's EU presence is modeled via the
		// EU Tier-2 it is closest to; we pick the first German Tier-2.
		for _, c := range []string{"DE", "FR", "NL"} {
			for _, t2 := range s.topo.ASesIn(c) {
				if s.topo.ASes[t2].Type == topology.ASTransit {
					sites = append(sites, t2)
					break
				}
			}
			if len(sites) >= 2 {
				break
			}
		}
		if hasZARegion(as.Name) {
			for _, t2 := range s.topo.ASesIn("ZA") {
				if s.topo.ASes[t2].Type == topology.ASTransit {
					sites = append(sites, t2)
					break
				}
			}
		}
		s.cloudSites[cn] = sites
	}
	return s
}

// hasZARegion mirrors the topology content catalog: which operators have
// a South African region.
func hasZARegion(name string) bool {
	switch name {
	case "GlobalCDN-C", "CloudOne", "CloudTwo":
		return true
	}
	return false
}

// regionalHubCountry returns the African country a region outsources
// resolvers to when it does not outsource to Europe.
func regionalHubCountry(r geo.Region) string {
	switch r {
	case geo.AfricaSouthern, geo.AfricaCentral:
		return "ZA"
	case geo.AfricaEastern:
		return "ZA"
	case geo.AfricaWestern:
		return "NG"
	case geo.AfricaNorthern:
		return "EG"
	}
	return "ZA"
}

// AssignmentFor returns the recursive resolver assignment of a client
// network (deterministic per client AS; safe for concurrent callers).
func (s *System) AssignmentFor(client topology.ASN) Assignment {
	s.mu.RLock()
	r, ok := s.assignments[client]
	s.mu.RUnlock()
	if ok {
		return r
	}
	r = s.computeAssignment(client)
	s.mu.Lock()
	s.assignments[client] = r
	s.mu.Unlock()
	return r
}

// ResolverFor is the pre-chain name for AssignmentFor.
//
// Deprecated: use AssignmentFor (or resolve through ChainFor, whose
// answers carry the assignment). Kept as a shim for one release.
func (s *System) ResolverFor(client topology.ASN) Assignment { return s.AssignmentFor(client) }

// computeAssignment derives a client's assignment — a pure function of
// the seed and the client ASN.
func (s *System) computeAssignment(client topology.ASN) Assignment {
	as := s.topo.ASes[client]
	if as == nil {
		return Assignment{}
	}
	mix := mixes[as.Region]
	var r Assignment
	draw := s.f(uint64(client), 0x51)
	switch {
	case draw < mix.local:
		r.Kind = ResolverLocalISP
		r.Country = as.Country
		r.ASN = s.inCountryResolverHost(as.Country, client)
	case draw < mix.local+mix.other:
		r.Kind = ResolverOtherCountry
		if s.f(uint64(client), 0x52) < mix.otherEU {
			// Outsourced to a European operator.
			r.Country = []string{"FR", "DE", "GB"}[pick(splitmix(s.seed^uint64(client)^0x53), 3)]
		} else {
			r.Country = regionalHubCountry(as.Region)
		}
		r.ASN = s.inCountryResolverHost(r.Country, client)
	default:
		r.Kind = ResolverCloud
		r.ASN = s.cloudASNs[pick(splitmix(s.seed^uint64(client)^0x54), len(s.cloudASNs))]
	}
	return r
}

// inCountryResolverHost picks the AS hosting a resolver in the country:
// prefer the incumbent ISP, else any ISP, else any AS.
func (s *System) inCountryResolverHost(ctry string, salt topology.ASN) topology.ASN {
	var isps, all []topology.ASN
	for _, a := range s.topo.ASesIn(ctry) {
		as := s.topo.ASes[a]
		if as.Type == topology.ASIXPRouteServer {
			continue
		}
		all = append(all, a)
		if as.Type == topology.ASFixedISP || as.Type == topology.ASMobileCarrier {
			isps = append(isps, a)
		}
	}
	pool := isps
	if len(pool) == 0 {
		pool = all
	}
	if len(pool) == 0 {
		return 0
	}
	return pool[pick(splitmix(s.seed^uint64(salt)^0x55), len(pool))]
}

// AnycastSite picks the nearest *reachable* instance of a cloud resolver
// for a client, returning the site AS; ok=false when no instance is
// reachable (e.g. mid cable cut). Results are memoized under the current
// (routing generation, failure epoch) stamp.
func (s *System) AnycastSite(client, cloud topology.ASN) (topology.ASN, bool) {
	m := s.memoNow()
	key := siteKey{client: client, cloud: cloud}
	if v, ok := m.sites.Load(key); ok {
		sv := v.(siteVal)
		return sv.site, sv.ok
	}
	site, ok := s.anycastSiteUncached(client, cloud)
	if s.net.Router().Gen() == m.gen && s.net.Epoch() == m.epoch {
		// Only cache results whose inputs were stable across the whole
		// computation; a concurrent failure change just skips the store.
		m.sites.Store(key, siteVal{site: site, ok: ok})
	}
	return site, ok
}

func (s *System) anycastSiteUncached(client, cloud topology.ASN) (topology.ASN, bool) {
	sites := s.cloudSites[cloud]
	best := topology.ASN(0)
	bestRTT := 0.0
	for _, site := range sites {
		rtt, ok := s.net.RTTBetween(client, site)
		if !ok {
			continue
		}
		if best == 0 || rtt < bestRTT {
			best, bestRTT = site, rtt
		}
	}
	return best, best != 0
}

// AuthPlacement decides where a domain's authoritative DNS is hosted,
// given the domain's origin country: in-country, in a public cloud, or
// in Europe. Deterministic per domain.
type AuthLocation struct {
	ASN     topology.ASN
	Country string
	Cloud   bool
}

// Authority places a domain's authoritative servers. The placement is a
// pure function of the seed and the arguments, memoized because page
// loads re-resolve the same domains constantly.
func (s *System) Authority(domain, originCountry string) AuthLocation {
	key := domain + "\x00" + originCountry
	s.mu.RLock()
	loc, okM := s.authMemo[key]
	s.mu.RUnlock()
	if okM {
		return loc
	}
	loc = s.computeAuthority(domain, originCountry)
	s.mu.Lock()
	s.authMemo[key] = loc
	s.mu.Unlock()
	return loc
}

// AuthorityFor is the pre-chain name for Authority.
//
// Deprecated: use Authority, or read the Auth field off a chain Answer.
// Kept as a shim for one release.
func (s *System) AuthorityFor(domain, originCountry string) AuthLocation {
	return s.Authority(domain, originCountry)
}

func (s *System) computeAuthority(domain, originCountry string) AuthLocation {
	c, ok := geo.Lookup(originCountry)
	if !ok {
		return AuthLocation{}
	}
	mix := mixes[c.Region]
	h := uint64(0)
	for _, ch := range domain {
		h = splitmix(h ^ uint64(ch))
	}
	draw := s.f(h, 0x61)
	if draw < mix.authLocal {
		return AuthLocation{ASN: s.inCountryResolverHost(originCountry, topology.ASN(h)), Country: originCountry}
	}
	// Remote authoritative: mostly on clouds, else plain EU hosting.
	if s.f(h, 0x62) < 0.7 {
		cloud := s.cloudASNs[pick(splitmix(h^0x63), len(s.cloudASNs))]
		return AuthLocation{ASN: cloud, Country: s.topo.ASes[cloud].Country, Cloud: true}
	}
	euHost := s.inCountryResolverHost([]string{"DE", "FR", "GB", "NL"}[pick(splitmix(h^0x64), 4)], topology.ASN(h))
	return AuthLocation{ASN: euHost, Country: s.topo.ASes[euHost].Country}
}

// Resolution is the outcome of one end-to-end DNS lookup (the legacy
// result shape; chain consumers get the richer Answer).
type Resolution struct {
	OK         bool
	LatencyMs  float64
	Resolver   Assignment
	ResolverAS topology.ASN // concrete AS serving the query (anycast resolved)
	Auth       AuthLocation
	FailReason string
}

// Resolve performs client -> recursive -> authoritative resolution over
// the current data plane, failing when either leg is unreachable. This
// is the "hidden dependency" code path: a client whose resolver sits
// abroad loses DNS — and hence every local service — when the cable that
// carries that leg is cut.
//
// Resolve is a shim over the client's canonical chain (ChainFor); its
// outputs are identical to the pre-chain implementation, which
// TestChainMatchesLegacyOracle proves against an independent oracle.
func (s *System) Resolve(client topology.ASN, domain, originCountry string) Resolution {
	ans, err := s.ChainFor(client).Resolve(Query{
		Client: client, Domain: domain, OriginCountry: originCountry,
	}, DefaultDepth)
	if err != nil {
		return Resolution{Resolver: s.AssignmentFor(client), FailReason: err.Error()}
	}
	return Resolution{
		OK:         ans.OK,
		LatencyMs:  ans.LatencyMs,
		Resolver:   ans.Assignment,
		ResolverAS: ans.ResolverAS,
		Auth:       ans.Auth,
		FailReason: ans.FailReason,
	}
}

// ResolveWithPolicy is Resolve under counterfactual regulation — the
// "legislate critical dependencies" intervention of Section 5.2's
// takeaway. forceLocalResolver puts every client on an in-country
// recursive resolver; forceLocalAuth additionally hosts the
// authoritative DNS of domestic domains in their origin country (the
// full localization the paper argues current content-localization laws
// miss). The data plane stays as-is, so deltas isolate the dependency.
func (s *System) ResolveWithPolicy(client topology.ASN, domain, originCountry string, forceLocalResolver, forceLocalAuth bool) Resolution {
	if !forceLocalResolver && !forceLocalAuth {
		return s.Resolve(client, domain, originCountry)
	}
	as := s.topo.ASes[client]
	if as == nil {
		return Resolution{FailReason: "unknown client"}
	}
	var res Resolution
	if forceLocalResolver {
		// The mandated resolver runs inside the client's own ISP when
		// the client is one (operational practice), else at a domestic
		// ISP. Note the residual exposure this leaves: reaching another
		// domestic network can still detour through Europe when there is
		// no local peering — DNS localization alone cannot fix Section
		// 4.1's routing problem.
		host := client
		if as.Type != topology.ASMobileCarrier && as.Type != topology.ASFixedISP {
			host = s.inCountryResolverHost(as.Country, client)
		}
		res.Resolver = Assignment{Kind: ResolverLocalISP, Country: as.Country, ASN: host}
		if res.Resolver.ASN == 0 {
			res.FailReason = "no in-country resolver host"
			return res
		}
		res.ResolverAS = res.Resolver.ASN
	} else {
		// Resolver as deployed today; only the authoritative moves.
		res.Resolver = s.AssignmentFor(client)
		res.ResolverAS = res.Resolver.ASN
		if res.Resolver.Kind == ResolverCloud {
			site, okSite := s.AnycastSite(client, res.Resolver.ASN)
			if !okSite {
				res.FailReason = "no reachable anycast resolver instance"
				return res
			}
			res.ResolverAS = site
		}
	}
	rtt1, ok := s.net.RTTBetween(client, res.ResolverAS)
	if !ok {
		res.FailReason = "resolver unreachable"
		return res
	}
	res.Auth = s.Authority(domain, originCountry)
	if forceLocalAuth {
		if host := s.inCountryResolverHost(originCountry, topology.ASN(len(domain))); host != 0 {
			res.Auth = AuthLocation{ASN: host, Country: originCountry}
		}
	}
	if res.Auth.ASN == 0 {
		res.FailReason = "no authoritative placement"
		return res
	}
	rtt2, ok := s.net.RTTBetween(res.ResolverAS, res.Auth.ASN)
	if !ok {
		res.FailReason = "authoritative unreachable"
		return res
	}
	res.OK = true
	res.LatencyMs = rtt1 + rtt2
	return res
}

// UseShare is one region's resolver-locality breakdown (Figure 2c).
type UseShare struct {
	Region       geo.Region
	SameCountry  float64
	OtherCountry float64
	Cloud        float64
	Samples      int
}

// MeasureResolverUse runs the APNIC-style sampling measurement: for each
// client network in the region (weighted equally, as ad sampling roughly
// does at AS granularity), observe which resolver its queries arrive
// from and classify its location.
func (s *System) MeasureResolverUse(region geo.Region) UseShare {
	out := UseShare{Region: region}
	var same, other, cloud int
	for _, asn := range s.topo.ASNs() {
		as := s.topo.ASes[asn]
		if as.Region != region || !isClientNetwork(as) {
			continue
		}
		r := s.AssignmentFor(asn)
		out.Samples++
		switch r.Kind {
		case ResolverLocalISP:
			same++
		case ResolverOtherCountry:
			other++
		default:
			cloud++
		}
	}
	if out.Samples > 0 {
		out.SameCountry = float64(same) / float64(out.Samples)
		out.OtherCountry = float64(other) / float64(out.Samples)
		out.Cloud = float64(cloud) / float64(out.Samples)
	}
	return out
}

// ClientNetworks lists the country's end-user networks — the vantage
// set resolver studies (and the dnsload driver) sample from.
func (s *System) ClientNetworks(country string) []topology.ASN {
	var out []topology.ASN
	for _, asn := range s.topo.ASesIn(country) {
		if isClientNetwork(s.topo.ASes[asn]) {
			out = append(out, asn)
		}
	}
	return out
}

// CountryOf returns the hosting country of an AS ("" when unknown).
func (s *System) CountryOf(asn topology.ASN) string {
	if as := s.topo.ASes[asn]; as != nil {
		return as.Country
	}
	return ""
}

// isClientNetwork reports whether an AS originates end-user queries.
func isClientNetwork(as *topology.AS) bool {
	switch as.Type {
	case topology.ASMobileCarrier, topology.ASFixedISP, topology.ASEducation, topology.ASEnterprise, topology.ASGovernment:
		return true
	}
	return false
}
