package dnssim

import (
	"errors"
	"strings"
	"testing"

	"github.com/afrinet/observatory/internal/bgp"
	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/topology"
)

// oracleResolve is an independent reimplementation of the pre-chain
// Resolve (the exact control flow dnssim.go shipped before PR 10),
// written against only the seed-pure accessors. The chain refactor is
// correct iff Resolve — now a shim over ChainFor — matches it on every
// input.
func oracleResolve(s *System, client topology.ASN, domain, originCountry string) Resolution {
	var res Resolution
	r := s.AssignmentFor(client)
	res.Resolver = r
	serving := r.ASN
	if r.Kind == ResolverCloud {
		site, okSite := s.AnycastSite(client, r.ASN)
		if !okSite {
			res.FailReason = "no reachable anycast resolver instance"
			return res
		}
		serving = site
	}
	res.ResolverAS = serving
	rtt1, ok := s.net.RTTBetween(client, serving)
	if !ok {
		res.FailReason = "resolver unreachable (AS" + itoa(uint64(serving)) + ")"
		return res
	}
	res.Auth = s.Authority(domain, originCountry)
	if res.Auth.ASN == 0 {
		res.FailReason = "no authoritative placement"
		return res
	}
	rtt2, ok := s.net.RTTBetween(serving, res.Auth.ASN)
	if !ok {
		res.FailReason = "authoritative unreachable (AS" + itoa(uint64(res.Auth.ASN)) + ")"
		return res
	}
	res.OK = true
	res.LatencyMs = rtt1 + rtt2
	return res
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestChainMatchesLegacyOracle is the 3-seed equivalence proof: the
// shimmed legacy API (Resolve/ResolverFor/AuthorityFor) and the chain
// API produce identical resolver assignments and resolutions.
func TestChainMatchesLegacyOracle(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		topo := topology.Generate(topology.Params{Seed: seed, Year: 2025})
		n := netsim.New(topo, bgp.New(topo), seed)
		s := New(n, seed)

		clients := 0
		for _, c := range geo.AfricanCountries() {
			for _, asn := range s.ClientNetworks(c.ISO2) {
				if clients >= 120 {
					break
				}
				clients++
				if got, want := s.ResolverFor(asn), s.AssignmentFor(asn); got != want {
					t.Fatalf("seed %d: shim ResolverFor != AssignmentFor for AS%d", seed, asn)
				}
				for i := 0; i < 3; i++ {
					domain := domainName(c.ISO2, i)
					want := oracleResolve(s, asn, domain, c.ISO2)
					got := s.Resolve(asn, domain, c.ISO2)
					if got != want {
						t.Fatalf("seed %d: chain Resolve diverges from oracle for AS%d %s:\n got %+v\nwant %+v",
							seed, asn, domain, got, want)
					}
					ans, err := s.ChainFor(asn).Resolve(Query{Client: asn, Domain: domain, OriginCountry: c.ISO2}, DefaultDepth)
					if err != nil {
						t.Fatalf("seed %d: chain error: %v", seed, err)
					}
					if ans.Assignment != want.Resolver || ans.OK != want.OK || ans.LatencyMs != want.LatencyMs {
						t.Fatalf("seed %d: raw chain answer diverges for AS%d %s", seed, asn, domain)
					}
				}
			}
		}
		if clients < 50 {
			t.Fatalf("seed %d: only %d client networks sampled", seed, clients)
		}
	}
}

func TestChainSpecShapes(t *testing.T) {
	cases := map[ResolverKind][]string{
		ResolverLocalISP:     {"stub", "cache", "forwarder", "authority"},
		ResolverOtherCountry: {"stub", "cache", "hub", "authority"},
		ResolverCloud:        {"stub", "cache", "cloud", "authority"},
	}
	for kind, want := range cases {
		got := ChainSpec(kind)
		if strings.Join(got, ">") != strings.Join(want, ">") {
			t.Fatalf("ChainSpec(%v) = %v, want %v", kind, got, want)
		}
	}
	for _, name := range []string{"stub", "cache", "forwarder", "hub", "cloud", "authority"} {
		found := false
		for _, reg := range RegisteredLinks() {
			if reg == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("built-in link %q not registered", name)
		}
	}
}

func TestChainRecordsLinkNames(t *testing.T) {
	for _, c := range geo.AfricanCountries() {
		for _, asn := range testDNS.ClientNetworks(c.ISO2) {
			ans, err := testDNS.ChainFor(asn).Resolve(Query{Client: asn, Domain: domainName(c.ISO2, 0), OriginCountry: c.ISO2}, DefaultDepth)
			if err != nil || !ans.OK {
				continue
			}
			want := strings.Join(ChainSpec(testDNS.AssignmentFor(asn).Kind), ">")
			if ans.Chain != want {
				t.Fatalf("AS%d chain string %q, want %q", asn, ans.Chain, want)
			}
			return // one OK answer per shape family is plenty; loop finds the first
		}
	}
	t.Fatal("no successful resolution found")
}

func TestChainDepthExhaustionIsLoopError(t *testing.T) {
	asn := testDNS.ClientNetworks("ZA")[0]
	q := Query{Client: asn, Domain: domainName("ZA", 0), OriginCountry: "ZA"}
	// The canonical chain is 4 links; a depth budget of 1 must trip the
	// loop detector partway down, never panic or mis-resolve.
	if _, err := testDNS.ChainFor(asn).Resolve(q, 1); !errors.Is(err, ErrLoopDetected) {
		t.Fatalf("depth 1 gave err=%v, want ErrLoopDetected", err)
	}
	if _, err := testDNS.ChainFor(asn).Resolve(q, DefaultDepth); err != nil {
		t.Fatalf("default depth errored: %v", err)
	}
}

func TestBuildChainStacksCustomLinks(t *testing.T) {
	asn := testDNS.ClientNetworks("NG")[0]
	asg := testDNS.AssignmentFor(asn)
	// A hand-built chain that skips the cache: same answer, different
	// chain string — the composability the registry exists for.
	names := append([]string{}, ChainSpec(asg.Kind)...)
	bare := append([]string{names[0]}, names[2:]...) // drop "cache"
	chain, err := BuildChain(testDNS, LinkConfig{Client: asn, Assignment: asg}, bare...)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Client: asn, Domain: domainName("NG", 1), OriginCountry: "NG"}
	got, err := chain.Resolve(q, DefaultDepth)
	if err != nil {
		t.Fatal(err)
	}
	want, err := testDNS.ChainFor(asn).Resolve(q, DefaultDepth)
	if err != nil {
		t.Fatal(err)
	}
	if got.OK != want.OK || got.LatencyMs != want.LatencyMs || got.Assignment != want.Assignment {
		t.Fatalf("cache-free chain diverges: got %+v want %+v", got, want)
	}
	if got.Chain == want.Chain {
		t.Fatalf("chain strings should differ, both %q", got.Chain)
	}
	if _, err := BuildChain(testDNS, LinkConfig{Client: asn}, "no-such-link"); err == nil {
		t.Fatal("unknown link name should error")
	}
	if _, err := BuildChain(testDNS, LinkConfig{Client: asn}); err == nil {
		t.Fatal("empty chain should error")
	}
}

// TestChainSurvivesLinkFlap is the memo-scoping fix: chains and
// assignments are seed-pure, so a cable flap must not rebuild them —
// only the (gen, epoch)-stamped answer/site caches roll over.
func TestChainSurvivesLinkFlap(t *testing.T) {
	topo := topology.Generate(topology.DefaultParams())
	n := netsim.New(topo, bgp.New(topo), 7)
	s := New(n, 7)

	asn := s.ClientNetworks("KE")[0]
	before := s.ChainFor(asn)
	asgBefore := s.AssignmentFor(asn)
	q := Query{Client: asn, Domain: domainName("KE", 2), OriginCountry: "KE"}
	ansBefore, err := before.Resolve(q, DefaultDepth)
	if err != nil {
		t.Fatal(err)
	}
	hits0, misses0 := s.ChainCacheStats()
	if misses0 == 0 {
		t.Fatal("first resolution should be a cache miss")
	}

	// Flap every cable: failure epoch moves, routing gen moves.
	for _, id := range topo.CableIDs() {
		n.CutCable(id)
	}
	n.RestoreAll()

	if after := s.ChainFor(asn); after != before {
		t.Fatal("chain was rebuilt by an unrelated link flap; chains must be seed-pure")
	}
	if s.AssignmentFor(asn) != asgBefore {
		t.Fatal("assignment changed across flap")
	}
	// The answer cache rolled to a fresh (gen, epoch) generation: the
	// same query misses once, then hits.
	if _, err := before.Resolve(q, DefaultDepth); err != nil {
		t.Fatal(err)
	}
	hits1, misses1 := s.ChainCacheStats()
	if hits1 != 0 || misses1 != 1 {
		t.Fatalf("post-flap stats = (%d hits, %d misses), want (0, 1); pre-flap (%d, %d)", hits1, misses1, hits0, misses0)
	}
	ansAfter, err := before.Resolve(q, DefaultDepth)
	if err != nil {
		t.Fatal(err)
	}
	if hits2, _ := s.ChainCacheStats(); hits2 != 1 {
		t.Fatalf("repeat query should hit the cache, stats hits=%d", hits2)
	}
	if ansAfter != ansBefore {
		t.Fatalf("restored plane must reproduce the original answer:\n before %+v\n after  %+v", ansBefore, ansAfter)
	}
}

func TestCacheHitReturnsIdenticalAnswer(t *testing.T) {
	asn := testDNS.ClientNetworks("EG")[0]
	q := Query{Client: asn, Domain: domainName("EG", 3), OriginCountry: "EG"}
	first, err := testDNS.ChainFor(asn).Resolve(q, DefaultDepth)
	if err != nil {
		t.Fatal(err)
	}
	second, err := testDNS.ChainFor(asn).Resolve(q, DefaultDepth)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("cache hit changed the answer:\n first  %+v\n second %+v", first, second)
	}
}

func TestECSQueriesAreSeparatelyKeyed(t *testing.T) {
	found := false
	for _, c := range geo.AfricanCountries() {
		for _, asn := range testDNS.ClientNetworks(c.ISO2) {
			for i := 0; i < 4; i++ {
				q := Query{Client: asn, Domain: domainName(c.ISO2, i), OriginCountry: c.ISO2}
				plain, err := testDNS.ChainFor(asn).Resolve(q, DefaultDepth)
				if err != nil {
					t.Fatal(err)
				}
				q.ECS = true
				ecs, err := testDNS.ChainFor(asn).Resolve(q, DefaultDepth)
				if err != nil {
					t.Fatal(err)
				}
				if !plain.OK || !ecs.OK {
					continue
				}
				if plain.ECS || !ecs.ECS {
					t.Fatalf("ECS flag not echoed: plain=%v ecs=%v", plain.ECS, ecs.ECS)
				}
				// For a cloud-hosted authority queried through a remote
				// resolver, ECS can change the served replica; at minimum
				// ECS answers must always be localized to the client.
				if ecs.Auth.Cloud && !ecs.Localized {
					t.Fatalf("ECS answer not localized: %+v", ecs)
				}
				if ecs.Auth.Cloud {
					found = true
				}
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no cloud-hosted authority sampled; test vacuous")
	}
}
