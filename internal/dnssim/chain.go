package dnssim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/afrinet/observatory/internal/topology"
)

// This file is the PR 10 chain API: dnssim's resolution path rebuilt as
// a stack of named, registered links in the secDNS wrapper idiom. Each
// link implements Resolver, delegates to the next link with depth-1,
// and draws latency/reachability from netsim only — no clocks, no
// unseeded randomness, so a chain answer is a pure function of
// (seed, topology, failure state, query).

// Query is one logical DNS question entering a chain.
type Query struct {
	// Client is the end-user network originating the question.
	Client topology.ASN
	// Domain is the name being resolved.
	Domain string
	// OriginCountry is the domain's home country (drives authoritative
	// placement, as in the legacy API).
	OriginCountry string
	// ECS asks the stub to attach an EDNS Client Subnet option, letting
	// anycast authorities localize for the *client* rather than for the
	// recursive resolver that fronts it.
	ECS bool
	// Via is the network the question is currently being asked from.
	// Zero means "from the client"; recursive links set it to their
	// serving AS before delegating, so the authority link measures the
	// correct last leg.
	Via topology.ASN
}

// Answer is a chain resolution outcome — the legacy Resolution plus the
// localization facts the dnsload driver aggregates.
type Answer struct {
	OK         bool
	FailReason string
	LatencyMs  float64

	// Assignment is the recursive resolver assignment the chain ran
	// under; ResolverAS is the concrete AS that served the recursive
	// step (anycast resolved to a site).
	Assignment Assignment
	ResolverAS topology.ASN
	// Auth is the authoritative placement (set even on failure once the
	// chain got that far).
	Auth AuthLocation

	// ServedASN / ServedCountry identify the replica whose address the
	// answer points at. For cloud-hosted authorities that is the anycast
	// site chosen for whoever the authority thinks is asking.
	ServedASN     topology.ASN
	ServedCountry string
	// Localized reports whether the served replica is the one the
	// *client* would be steered to — the quantity the ECS study compares
	// with and without client-subnet information.
	Localized bool
	// ECS echoes whether client-subnet was attached upstream.
	ECS bool

	// Chain records the links the answer passed through, outermost
	// first, ">"-separated (e.g. "stub>cache>forwarder>authority").
	Chain string

	// Poisoned/PoisonBogon are set by on-path interference wrappers
	// (internal/outage); the base links never touch them.
	Poisoned    bool
	PoisonBogon bool
}

// ErrLoopDetected is returned when delegation exhausts its depth budget,
// indicating a mis-built (cyclic) chain.
var ErrLoopDetected = errors.New("dnssim: chain loop detected (depth exhausted)")

// DefaultDepth is the delegation budget callers should pass to a
// canonical chain's Resolve; it is far deeper than any built-in chain.
const DefaultDepth = 64

// Resolver is one link in a resolution chain. Implementations must
// return ErrLoopDetected when depth goes negative and must delegate
// downstream with depth-1.
type Resolver interface {
	// Name identifies the link type (the registry key it was built from).
	Name() string
	// Resolve answers the query, consuming one unit of depth.
	Resolve(q Query, depth int) (Answer, error)
}

// LinkConfig parameterizes a link constructor for one client chain.
type LinkConfig struct {
	// Client is the network the chain is built for.
	Client topology.ASN
	// Assignment is the client's recursive resolver assignment; links
	// that model the recursive step read their target from it.
	Assignment Assignment
}

// Constructor builds a link bound to a system, wrapping next (nil for
// the terminal link).
type Constructor func(s *System, cfg LinkConfig, next Resolver) Resolver

var (
	linkMu   sync.RWMutex
	linkCtor = map[string]Constructor{}
)

// Register adds a named link constructor. Registering a duplicate name
// panics: link names are part of the observable Chain strings, so a
// silent override would corrupt recorded data.
func Register(name string, ctor Constructor) {
	linkMu.Lock()
	defer linkMu.Unlock()
	if _, dup := linkCtor[name]; dup {
		panic(fmt.Sprintf("dnssim: link %q registered twice", name))
	}
	linkCtor[name] = ctor
}

// NewLink instantiates one registered link.
func NewLink(name string, s *System, cfg LinkConfig, next Resolver) (Resolver, error) {
	linkMu.RLock()
	ctor, ok := linkCtor[name]
	linkMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dnssim: unknown link %q", name)
	}
	return ctor(s, cfg, next), nil
}

// RegisteredLinks lists the registered link names, sorted.
func RegisteredLinks() []string {
	linkMu.RLock()
	defer linkMu.RUnlock()
	out := make([]string, 0, len(linkCtor))
	for name := range linkCtor {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// BuildChain stacks registered links outermost-first: the first name is
// the entry point, the last is the terminal link.
func BuildChain(s *System, cfg LinkConfig, names ...string) (Resolver, error) {
	if len(names) == 0 {
		return nil, errors.New("dnssim: empty chain")
	}
	var next Resolver
	for i := len(names) - 1; i >= 0; i-- {
		link, err := NewLink(names[i], s, cfg, next)
		if err != nil {
			return nil, err
		}
		next = link
	}
	return next, nil
}

// ChainSpec returns the canonical link stack for a resolver kind.
func ChainSpec(kind ResolverKind) []string {
	switch kind {
	case ResolverLocalISP:
		return []string{"stub", "cache", "forwarder", "authority"}
	case ResolverOtherCountry:
		return []string{"stub", "cache", "hub", "authority"}
	default:
		return []string{"stub", "cache", "cloud", "authority"}
	}
}

// ChainFor returns the client's canonical chain: stub → cache → the
// recursive step its assignment dictates → authority. Chains are pure
// functions of the seed (the cache link scopes its entries to the
// failure state internally), so they are memoized forever — cable cuts
// do not rebuild them.
func (s *System) ChainFor(client topology.ASN) Resolver {
	s.mu.RLock()
	c, ok := s.chains[client]
	s.mu.RUnlock()
	if ok {
		return c
	}
	asg := s.AssignmentFor(client)
	c, err := BuildChain(s, LinkConfig{Client: client, Assignment: asg}, ChainSpec(asg.Kind)...)
	if err != nil {
		// Canonical specs only use built-in links; this is unreachable
		// unless init registration was bypassed.
		panic(err)
	}
	s.mu.Lock()
	if prev, ok := s.chains[client]; ok {
		c = prev // first store wins: callers may compare chain pointers
	} else {
		s.chains[client] = c
	}
	s.mu.Unlock()
	return c
}

// chainMemo is the reachability-scoped cache generation: every entry in
// it was computed under the (routing gen, failure epoch) stamp it
// carries, and the whole generation is dropped — by pointer swap, not by
// walking maps — the first time a query observes a different stamp.
// Unrelated seed-pure memos (assignments, authority placements, chain
// structure) live outside it and survive every flap.
type chainMemo struct {
	gen, epoch uint64
	sites      sync.Map // siteKey -> siteVal
	answers    sync.Map // answerKey -> Answer
	hits       atomic.Uint64
	misses     atomic.Uint64
}

type siteKey struct {
	client, cloud topology.ASN
}

type siteVal struct {
	site topology.ASN
	ok   bool
}

type answerKey struct {
	client        topology.ASN
	domain        string
	originCountry string
	ecs           bool
}

// memoNow returns the memo generation for the current failure state,
// swapping in a fresh one when routing gen or failure epoch moved.
func (s *System) memoNow() *chainMemo {
	gen, epoch := s.net.Router().Gen(), s.net.Epoch()
	for {
		m := s.memo.Load()
		if m != nil && m.gen == gen && m.epoch == epoch {
			return m
		}
		fresh := &chainMemo{gen: gen, epoch: epoch}
		if s.memo.CompareAndSwap(m, fresh) {
			return fresh
		}
	}
}

// ChainCacheStats reports cache-link hits and misses accumulated under
// the current failure state (counters reset when a flap swaps the memo
// generation).
func (s *System) ChainCacheStats() (hits, misses uint64) {
	m := s.memo.Load()
	if m == nil {
		return 0, 0
	}
	return m.hits.Load(), m.misses.Load()
}

func init() {
	Register("stub", newStubLink)
	Register("cache", newCacheLink)
	Register("forwarder", func(s *System, cfg LinkConfig, next Resolver) Resolver {
		return &recursiveLink{name: "forwarder", s: s, cfg: cfg, next: next}
	})
	Register("hub", func(s *System, cfg LinkConfig, next Resolver) Resolver {
		return &recursiveLink{name: "hub", s: s, cfg: cfg, next: next}
	})
	Register("cloud", newCloudLink)
	Register("authority", newAuthorityLink)
}

// prependChain stamps a link name onto an answer's chain record.
func prependChain(name string, ans *Answer) {
	if ans.Chain == "" {
		ans.Chain = name
	} else {
		ans.Chain = name + ">" + ans.Chain
	}
}

// stubLink is the client-side entry point: it normalizes the query
// (Via defaults to the client) and stamps the ECS flag into the answer.
type stubLink struct {
	s    *System
	cfg  LinkConfig
	next Resolver
}

func newStubLink(s *System, cfg LinkConfig, next Resolver) Resolver {
	return &stubLink{s: s, cfg: cfg, next: next}
}

func (l *stubLink) Name() string { return "stub" }

func (l *stubLink) Resolve(q Query, depth int) (Answer, error) {
	if depth < 0 {
		return Answer{}, ErrLoopDetected
	}
	if l.next == nil {
		return Answer{}, errors.New("dnssim: stub link has no upstream")
	}
	if q.Via == 0 {
		q.Via = q.Client
	}
	ans, err := l.next.Resolve(q, depth-1)
	if err != nil {
		return Answer{}, err
	}
	ans.ECS = q.ECS
	prependChain("stub", &ans)
	return ans, nil
}

// cacheLink memoizes whole-chain answers keyed by (client, domain,
// origin, ecs), scoped to the current (gen, epoch) memo generation so a
// cable cut invalidates exactly the answers it could change.
type cacheLink struct {
	s    *System
	cfg  LinkConfig
	next Resolver
}

func newCacheLink(s *System, cfg LinkConfig, next Resolver) Resolver {
	return &cacheLink{s: s, cfg: cfg, next: next}
}

func (l *cacheLink) Name() string { return "cache" }

func (l *cacheLink) Resolve(q Query, depth int) (Answer, error) {
	if depth < 0 {
		return Answer{}, ErrLoopDetected
	}
	if l.next == nil {
		return Answer{}, errors.New("dnssim: cache link has no upstream")
	}
	m := l.s.memoNow()
	key := answerKey{client: q.Client, domain: q.Domain, originCountry: q.OriginCountry, ecs: q.ECS}
	if v, ok := m.answers.Load(key); ok {
		m.hits.Add(1)
		return v.(Answer), nil
	}
	m.misses.Add(1)
	ans, err := l.next.Resolve(q, depth-1)
	if err != nil {
		return Answer{}, err
	}
	prependChain("cache", &ans)
	if l.s.net.Router().Gen() == m.gen && l.s.net.Epoch() == m.epoch {
		// Store only when the failure state held for the whole
		// computation; otherwise the answer may mix epochs.
		m.answers.Store(key, ans)
	}
	return ans, nil
}

// recursiveLink models the recursive-resolver hop for unicast
// assignments: "forwarder" for an in-country resolver, "hub" for one
// outsourced to another country. The client↔resolver leg is measured
// here; the resolver↔authority leg belongs to the authority link, which
// sees Via rewritten to the serving AS.
type recursiveLink struct {
	name string
	s    *System
	cfg  LinkConfig
	next Resolver
}

func (l *recursiveLink) Name() string { return l.name }

func (l *recursiveLink) Resolve(q Query, depth int) (Answer, error) {
	if depth < 0 {
		return Answer{}, ErrLoopDetected
	}
	if l.next == nil {
		return Answer{}, errors.New("dnssim: " + l.name + " link has no upstream")
	}
	asg := l.cfg.Assignment
	serving := asg.ASN
	rtt1, ok := l.s.net.RTTBetween(q.Client, serving)
	if !ok {
		ans := Answer{
			FailReason: fmt.Sprintf("resolver unreachable (AS%d)", serving),
			Assignment: asg,
			ResolverAS: serving,
			Chain:      l.name,
		}
		return ans, nil
	}
	q.Via = serving
	up, err := l.next.Resolve(q, depth-1)
	if err != nil {
		return Answer{}, err
	}
	up.Assignment = asg
	up.ResolverAS = serving
	if up.OK {
		up.LatencyMs += rtt1
	}
	prependChain(l.name, &up)
	return up, nil
}

// cloudLink models the anycast public-resolver hop: the client is
// routed to the nearest reachable instance of its assigned cloud
// resolver, and that site becomes the vantage the authority sees.
type cloudLink struct {
	s    *System
	cfg  LinkConfig
	next Resolver
}

func newCloudLink(s *System, cfg LinkConfig, next Resolver) Resolver {
	return &cloudLink{s: s, cfg: cfg, next: next}
}

func (l *cloudLink) Name() string { return "cloud" }

func (l *cloudLink) Resolve(q Query, depth int) (Answer, error) {
	if depth < 0 {
		return Answer{}, ErrLoopDetected
	}
	if l.next == nil {
		return Answer{}, errors.New("dnssim: cloud link has no upstream")
	}
	asg := l.cfg.Assignment
	site, okSite := l.s.AnycastSite(q.Client, asg.ASN)
	if !okSite {
		// ResolverAS stays 0: no concrete instance answered, matching
		// the legacy failure shape.
		return Answer{
			FailReason: "no reachable anycast resolver instance",
			Assignment: asg,
			Chain:      "cloud",
		}, nil
	}
	rtt1, ok := l.s.net.RTTBetween(q.Client, site)
	if !ok {
		return Answer{
			FailReason: fmt.Sprintf("resolver unreachable (AS%d)", site),
			Assignment: asg,
			ResolverAS: site,
			Chain:      "cloud",
		}, nil
	}
	q.Via = site
	up, err := l.next.Resolve(q, depth-1)
	if err != nil {
		return Answer{}, err
	}
	up.Assignment = asg
	up.ResolverAS = site
	if up.OK {
		up.LatencyMs += rtt1
	}
	prependChain("cloud", &up)
	return up, nil
}

// authorityLink terminates a chain: it places the domain's authoritative
// servers, measures the resolver↔authority leg from Via, and decides
// which replica the answer points the client at.
type authorityLink struct {
	s   *System
	cfg LinkConfig
}

func newAuthorityLink(s *System, cfg LinkConfig, next Resolver) Resolver {
	_ = next // terminal link
	return &authorityLink{s: s, cfg: cfg}
}

func (l *authorityLink) Name() string { return "authority" }

func (l *authorityLink) Resolve(q Query, depth int) (Answer, error) {
	if depth < 0 {
		return Answer{}, ErrLoopDetected
	}
	via := q.Via
	if via == 0 {
		via = q.Client
	}
	ans := Answer{Chain: "authority"}
	loc := l.s.Authority(q.Domain, q.OriginCountry)
	ans.Auth = loc
	if loc.ASN == 0 {
		ans.FailReason = "no authoritative placement"
		return ans, nil
	}
	rtt2, ok := l.s.net.RTTBetween(via, loc.ASN)
	if !ok {
		ans.FailReason = fmt.Sprintf("authoritative unreachable (AS%d)", loc.ASN)
		return ans, nil
	}
	ans.OK = true
	ans.LatencyMs = rtt2
	ans.ServedASN, ans.ServedCountry, ans.Localized = l.servedReplica(q, loc, via)
	return ans, nil
}

// servedReplica decides which replica of the authority's content the
// answer names, and whether that replica is the best one for the
// client. Unicast authorities have exactly one replica. Cloud-hosted
// authorities steer by the asking vantage: without ECS that is the
// recursive resolver (Via), with ECS it is the client subnet — the
// localization gap the Section 5.2 study quantifies.
func (l *authorityLink) servedReplica(q Query, loc AuthLocation, via topology.ASN) (topology.ASN, string, bool) {
	if !loc.Cloud {
		return loc.ASN, loc.Country, true
	}
	view := via
	if q.ECS {
		view = q.Client
	}
	served, okServed := l.s.AnycastSite(view, loc.ASN)
	if !okServed {
		served = loc.ASN
	}
	best, okBest := l.s.AnycastSite(q.Client, loc.ASN)
	localized := okServed && okBest && served == best
	return served, l.s.CountryOf(served), localized
}
