package federation

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/afrinet/observatory/internal/core"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/store"
	"github.com/afrinet/observatory/internal/topology"
)

const testOwner = "lab"

func testConfig() Config {
	return Config{
		SuspectAfter:  2,
		DeadAfter:     4,
		QueryDeadline: 5 * time.Second,
		HedgeAfter:    20 * time.Millisecond,
	}
}

// newHarness builds a coordinator over n in-memory controller shards.
func newHarness(t *testing.T, n int, dir string, cfg Config) (*Coordinator, []*LocalShard) {
	t.Helper()
	c, err := New(dir, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	shards := make([]*LocalShard, n)
	for i := 0; i < n; i++ {
		shards[i] = NewLocalShard(core.NewController(testOwner))
		if err := c.AddShard(fmt.Sprintf("shard-%d", i), shards[i]); err != nil {
			t.Fatalf("AddShard: %v", err)
		}
	}
	return c, shards
}

func testProbes(n int) []core.ProbeInfo {
	out := make([]core.ProbeInfo, n)
	for i := range out {
		out[i] = core.ProbeInfo{
			ID:       fmt.Sprintf("probe-%02d", i),
			ASN:      topology.ASN(64500 + i%4),
			Country:  []string{"KE", "NG", "ZA", "SN"}[i%4],
			HasWired: i%2 == 0,
		}
	}
	return out
}

func testAssignments(ps []core.ProbeInfo, perProbe int) []probes.Assignment {
	var as []probes.Assignment
	for _, p := range ps {
		for j := 0; j < perProbe; j++ {
			as = append(as, probes.Assignment{
				ProbeID: p.ID,
				Task:    probes.Task{Kind: probes.TaskPing, Target: "10.0.0.1"},
			})
		}
	}
	return as
}

// pumpResults registers the probes, submits an experiment, and drives
// every probe through lease → result through the coordinator. Returns
// the federated experiment and how many results were accepted.
func pumpResults(t *testing.T, c *Coordinator, ps []core.ProbeInfo, perProbe int) (*core.Experiment, int) {
	t.Helper()
	for _, p := range ps {
		if err := c.Register(p); err != nil {
			t.Fatalf("Register(%s): %v", p.ID, err)
		}
	}
	exp, err := c.Submit("req-1", testOwner, "fed workload", testAssignments(ps, perProbe))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if exp.Status != core.StatusApproved {
		t.Fatalf("trusted owner not auto-approved: %s", exp.Status)
	}
	accepted := 0
	for _, p := range ps {
		for {
			tasks, err := c.LeaseTasks(p.ID, 8)
			if err != nil {
				t.Fatalf("LeaseTasks(%s): %v", p.ID, err)
			}
			if len(tasks) == 0 {
				break
			}
			rs := make([]probes.Result, 0, len(tasks))
			for _, task := range tasks {
				rs = append(rs, probes.Result{
					TaskID:     task.ID,
					Experiment: task.Experiment,
					ProbeID:    p.ID,
					Kind:       task.Kind,
					OK:         true,
					RTTms:      float64(10 + len(task.ID)%7),
				})
			}
			n, err := c.SubmitResults(p.ID, rs)
			if err != nil {
				t.Fatalf("SubmitResults(%s): %v", p.ID, err)
			}
			accepted += n
		}
	}
	return exp, accepted
}

func TestRingDeterministicAndCovering(t *testing.T) {
	ids := []string{"a", "b", "c"}
	r1 := newRing(ids, 0)
	r2 := newRing(ids, 0)
	hits := map[string]int{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("probe-%03d", i)
		o1, o2 := r1.owner(k), r2.owner(k)
		if o1 != o2 {
			t.Fatalf("ring not deterministic for %s: %s vs %s", k, o1, o2)
		}
		hits[o1]++
	}
	for _, id := range ids {
		if hits[id] == 0 {
			t.Fatalf("shard %s owns no keys: %v", id, hits)
		}
	}
	if got := (&ring{}).owner("x"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
}

func TestRoutingSpreadsProbesAndMergesResults(t *testing.T) {
	c, shards := newHarness(t, 3, "", testConfig())
	ps := testProbes(12)
	exp, accepted := pumpResults(t, c, ps, 2)
	if want := len(ps) * 2; accepted != want {
		t.Fatalf("accepted %d results, want %d", accepted, want)
	}
	// Each shard holds only its partition; together they hold everything
	// exactly once.
	perShard := 0
	for i, ls := range shards {
		recs, _, err := ls.ScanPage(store.Filter{Experiment: exp.ID}, 0, "")
		if err != nil {
			t.Fatalf("shard %d scan: %v", i, err)
		}
		perShard += len(recs)
	}
	if perShard != accepted {
		t.Fatalf("shards hold %d records, want %d", perShard, accepted)
	}
	recs, next, meta, err := c.ScanPage(store.Filter{Experiment: exp.ID}, 0, "")
	if err != nil {
		t.Fatalf("fed scan: %v", err)
	}
	if meta.Degraded || next != "" {
		t.Fatalf("healthy full scan: degraded=%v next=%q", meta.Degraded, next)
	}
	if len(recs) != accepted {
		t.Fatalf("fed scan returned %d records, want %d", len(recs), accepted)
	}
	seen := map[string]bool{}
	for _, r := range recs {
		if seen[r.Key()] {
			t.Fatalf("duplicate key %s in federated scan", r.Key())
		}
		seen[r.Key()] = true
	}
	// Federated aggregate == the fold over the federated scan.
	rep, meta, err := c.Aggregate(store.AggQuery{GroupBy: store.GroupCountry})
	if err != nil || meta.Degraded {
		t.Fatalf("fed aggregate: err=%v degraded=%v", err, meta.Degraded)
	}
	want, err := store.AggregateRecords(recs, store.GroupCountry)
	if err != nil {
		t.Fatalf("oracle fold: %v", err)
	}
	if !reflect.DeepEqual(rep, want) {
		t.Fatalf("fed aggregate diverges from fold over fed scan:\n got %+v\nwant %+v", rep, want)
	}
}

func TestSubmitIdempotentAcrossRetries(t *testing.T) {
	c, _ := newHarness(t, 3, "", testConfig())
	ps := testProbes(6)
	for _, p := range ps {
		if err := c.Register(p); err != nil {
			t.Fatalf("Register: %v", err)
		}
	}
	as := testAssignments(ps, 1)
	exp1, err := c.Submit("req-idem", testOwner, "d", as)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	exp2, err := c.Submit("req-idem", testOwner, "d", as)
	if err != nil {
		t.Fatalf("Submit retry: %v", err)
	}
	if exp1.ID != exp2.ID {
		t.Fatalf("retry minted a second experiment: %s vs %s", exp1.ID, exp2.ID)
	}
	if len(exp2.Assignments) != len(as) {
		t.Fatalf("retry has %d assignments, want %d", len(exp2.Assignments), len(as))
	}
	// A different request id is a different experiment.
	exp3, err := c.Submit("req-other", testOwner, "d", as)
	if err != nil {
		t.Fatalf("Submit other: %v", err)
	}
	if exp3.ID == exp1.ID {
		t.Fatalf("distinct request ids shared experiment id %s", exp1.ID)
	}
}

func TestSubmitRetryRepairsPartialPush(t *testing.T) {
	c, shards := newHarness(t, 2, "", testConfig())
	ps := testProbes(8)
	for _, p := range ps {
		if err := c.Register(p); err != nil {
			t.Fatalf("Register: %v", err)
		}
	}
	as := testAssignments(ps, 1)
	// Kill one shard: the push reaches the surviving shard only.
	killed := shards[1].Kill()
	if _, err := c.Submit("req-partial", testOwner, "d", as); err == nil {
		t.Fatal("Submit with a dead shard should fail")
	}
	shards[1].Revive(killed)
	exp, err := c.Submit("req-partial", testOwner, "d", as)
	if err != nil {
		t.Fatalf("Submit retry after revive: %v", err)
	}
	if len(exp.Assignments) != len(as) {
		t.Fatalf("repaired experiment has %d assignments, want %d", len(exp.Assignments), len(as))
	}
	// The surviving shard's partition was not duplicated by the retry.
	got, err := c.Experiment(exp.ID)
	if err != nil {
		t.Fatalf("Experiment: %v", err)
	}
	if len(got.Assignments) != len(as) {
		t.Fatalf("gathered experiment has %d assignments, want %d", len(got.Assignments), len(as))
	}
}

func TestCoordinatorJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	c1, shards := newHarness(t, 3, dir, cfg)
	ps := testProbes(9)
	exp, accepted := pumpResults(t, c1, ps, 1)
	routes1 := map[string]string{}
	for _, p := range ps {
		c1.mu.Lock()
		routes1[p.ID] = c1.ring.owner(p.ID)
		c1.mu.Unlock()
	}
	if err := c1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	c2, err := New(dir, cfg)
	if err != nil {
		t.Fatalf("New (recover): %v", err)
	}
	defer c2.Close()
	// Shard map replayed: same ids, backends detached (dead).
	sts := c2.ShardStatuses()
	if len(sts) != 3 {
		t.Fatalf("recovered %d shards, want 3", len(sts))
	}
	for _, st := range sts {
		if st.Health != core.ProbeDead {
			t.Fatalf("detached shard %s health %s, want dead", st.ID, st.Health)
		}
	}
	// Re-attach and verify routing and the submission book survived.
	for i, ls := range shards {
		if err := c2.AddShard(fmt.Sprintf("shard-%d", i), ls); err != nil {
			t.Fatalf("re-AddShard: %v", err)
		}
	}
	for _, p := range ps {
		c2.mu.Lock()
		got := c2.ring.owner(p.ID)
		c2.mu.Unlock()
		if got != routes1[p.ID] {
			t.Fatalf("probe %s re-routed from %s to %s across coordinator restart", p.ID, routes1[p.ID], got)
		}
	}
	dup, err := c2.Submit("req-1", testOwner, "fed workload", testAssignments(ps, 1))
	if err != nil {
		t.Fatalf("replayed Submit: %v", err)
	}
	if dup.ID != exp.ID {
		t.Fatalf("recovered coordinator re-minted %s for request req-1 (was %s)", dup.ID, exp.ID)
	}
	recs, _, meta, err := c2.ScanPage(store.Filter{Experiment: exp.ID}, 0, "")
	if err != nil || meta.Degraded {
		t.Fatalf("post-recovery scan: err=%v degraded=%v", err, meta.Degraded)
	}
	if len(recs) != accepted {
		t.Fatalf("post-recovery scan has %d records, want %d", len(recs), accepted)
	}
}

func TestShardHealthStateMachine(t *testing.T) {
	cfg := testConfig()
	c, shards := newHarness(t, 2, "", cfg)
	c.Tick(1)
	if sts := c.ShardStatuses(); sts[0].Health != core.ProbeAlive || sts[1].Health != core.ProbeAlive {
		t.Fatalf("expected both alive after tick: %+v", sts)
	}
	killed := shards[1].Kill()
	c.Tick(int(cfg.SuspectAfter))
	if got := c.ShardStatuses()[1].Health; got != core.ProbeSuspect {
		t.Fatalf("after %d silent ticks health = %s, want suspect", cfg.SuspectAfter, got)
	}
	c.Tick(int(cfg.DeadAfter - cfg.SuspectAfter))
	if got := c.ShardStatuses()[1].Health; got != core.ProbeDead {
		t.Fatalf("after %d silent ticks health = %s, want dead", cfg.DeadAfter, got)
	}
	if got := c.ShardStatuses()[0].Health; got != core.ProbeAlive {
		t.Fatalf("healthy shard marked %s", got)
	}
	shards[1].Revive(killed)
	c.Tick(1)
	if got := c.ShardStatuses()[1].Health; got != core.ProbeAlive {
		t.Fatalf("revived shard health = %s, want alive", got)
	}
	if c.Counters()["fed_shard_recovered"] == 0 {
		t.Fatal("fed_shard_recovered not counted")
	}
}

func TestDeadShardFailoverPreservesState(t *testing.T) {
	cfg := testConfig()
	cfg.AutoFailover = true
	base := t.TempDir()
	c, err := New("", cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()

	// Durable shards so state can be shipped.
	dcfg := core.DurabilityConfig{Trusted: []string{testOwner}, StoreFlushEvery: 4}
	shards := make([]*LocalShard, 2)
	dirs := make([]string, 2)
	for i := range shards {
		dirs[i] = fmt.Sprintf("%s/shard-%d", base, i)
		ctrl, err := core.Recover(dirs[i], dcfg)
		if err != nil {
			t.Fatalf("Recover shard %d: %v", i, err)
		}
		shards[i] = NewLocalShard(ctrl)
		if err := c.AddShard(fmt.Sprintf("shard-%d", i), shards[i]); err != nil {
			t.Fatalf("AddShard: %v", err)
		}
	}
	c.Failover = func(id string, epoch int) (Shard, error) {
		var src string
		var ls *LocalShard
		switch id {
		case "shard-0":
			src, ls = dirs[0], shards[0]
		case "shard-1":
			src, ls = dirs[1], shards[1]
		default:
			return nil, fmt.Errorf("unknown shard %s", id)
		}
		dst := fmt.Sprintf("%s/%s-epoch%d", base, id, epoch)
		if err := ShipState(src, dst, "", ""); err != nil {
			return nil, err
		}
		ctrl, err := core.Recover(dst, dcfg)
		if err != nil {
			return nil, err
		}
		ls.Revive(ctrl)
		return ls, nil
	}

	ps := testProbes(10)
	exp, accepted := pumpResults(t, c, ps, 2)

	// Crash shard-1 without closing it (a real crash leaves no goodbye);
	// its journal is already durable because appends sync before ack.
	dead := shards[1].Kill()
	_ = dead
	c.Tick(int(cfg.DeadAfter))
	if c.Counters()["fed_failovers"] != 1 {
		t.Fatalf("fed_failovers = %d, want 1 (counters: %v)", c.Counters()["fed_failovers"], c.Counters())
	}
	epoch, ok := c.ShardEpoch("shard-1")
	if !ok || epoch != 1 {
		t.Fatalf("shard-1 epoch = %d/%v, want 1", epoch, ok)
	}
	if got := c.ShardStatuses()[1].Health; got != core.ProbeAlive {
		t.Fatalf("failed-over shard health = %s, want alive", got)
	}

	// Exactly-once across the handoff: everything acknowledged before
	// the crash is present exactly once in the merged scan.
	recs, _, meta, err := c.ScanPage(store.Filter{Experiment: exp.ID}, 0, "")
	if err != nil || meta.Degraded {
		t.Fatalf("post-failover scan: err=%v degraded=%v", err, meta.Degraded)
	}
	if len(recs) != accepted {
		t.Fatalf("post-failover scan has %d records, want %d", len(recs), accepted)
	}
	keys := map[string]int{}
	for _, r := range recs {
		keys[r.Key()]++
	}
	for k, n := range keys {
		if n != 1 {
			t.Fatalf("key %s appears %d times after failover", k, n)
		}
	}
	// The replacement still serves its keyspace: new leases drain empty
	// (everything completed) rather than erroring.
	for _, p := range ps {
		if _, err := c.LeaseTasks(p.ID, 4); err != nil {
			t.Fatalf("post-failover lease for %s: %v", p.ID, err)
		}
	}
}

func TestScanDegradesAroundDeadShardAndRecovers(t *testing.T) {
	c, shards := newHarness(t, 3, "", testConfig())
	ps := testProbes(12)
	exp, accepted := pumpResults(t, c, ps, 1)

	killed := shards[2].Kill()
	recs, next, meta, err := c.ScanPage(store.Filter{Experiment: exp.ID}, 0, "")
	if err != nil {
		t.Fatalf("degraded scan errored: %v", err)
	}
	if !meta.Degraded || !reflect.DeepEqual(meta.ShardsMissing, []string{"shard-2"}) {
		t.Fatalf("meta = %+v, want degraded with shard-2 missing", meta)
	}
	if len(recs) >= accepted {
		t.Fatalf("degraded scan returned %d records, expected fewer than %d", len(recs), accepted)
	}
	// The degraded response carries a cursor that retries the missing
	// shard: after revival the remainder is reachable through it.
	shards[2].Revive(killed)
	rest, _, meta2, err := c.ScanPage(store.Filter{Experiment: exp.ID}, 0, next)
	if err != nil || meta2.Degraded {
		t.Fatalf("follow-up scan: err=%v meta=%+v", err, meta2)
	}
	got := map[string]bool{}
	for _, r := range append(recs, rest...) {
		if got[r.Key()] {
			t.Fatalf("duplicate key %s across degraded + follow-up pages", r.Key())
		}
		got[r.Key()] = true
	}
	if len(got) != accepted {
		t.Fatalf("degraded + follow-up pages cover %d keys, want %d", len(got), accepted)
	}

	// All shards down is an error, not an empty 200.
	for _, ls := range shards {
		ls.Kill()
	}
	if _, _, _, err := c.ScanPage(store.Filter{}, 0, ""); err == nil {
		t.Fatal("scan with every shard dead should error")
	}
	if _, _, err := c.Aggregate(store.AggQuery{}); err == nil {
		t.Fatal("aggregate with every shard dead should error")
	}
}

func TestScanPagination(t *testing.T) {
	c, _ := newHarness(t, 3, "", testConfig())
	ps := testProbes(9)
	exp, accepted := pumpResults(t, c, ps, 2)
	var walked []store.Record
	cursor := ""
	pages := 0
	for {
		recs, next, meta, err := c.ScanPage(store.Filter{Experiment: exp.ID}, 5, cursor)
		if err != nil || meta.Degraded {
			t.Fatalf("page %d: err=%v degraded=%v", pages, err, meta.Degraded)
		}
		walked = append(walked, recs...)
		pages++
		if next == "" {
			break
		}
		cursor = next
		if pages > accepted {
			t.Fatal("pagination does not terminate")
		}
	}
	full, _, _, err := c.ScanPage(store.Filter{Experiment: exp.ID}, 0, "")
	if err != nil {
		t.Fatalf("full scan: %v", err)
	}
	if len(walked) != len(full) {
		t.Fatalf("page walk found %d records, full scan %d", len(walked), len(full))
	}
	for i := range walked {
		if walked[i].Key() != full[i].Key() || walked[i].Seq != full[i].Seq {
			t.Fatalf("page walk diverges from full scan at %d: %+v vs %+v", i, walked[i], full[i])
		}
	}
}

// flakyShard fails its first n calls of each kind, then delegates.
type flakyShard struct {
	*LocalShard
	failFirst int
	calls     int
}

func (f *flakyShard) Health() (core.HealthReport, error) {
	f.calls++
	if f.calls <= f.failFirst {
		return core.HealthReport{}, errors.New("transient shard fault")
	}
	return f.LocalShard.Health()
}

func TestScatterCallHedgesTransientFaults(t *testing.T) {
	cfg := testConfig()
	c, err := New("", cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	fs := &flakyShard{LocalShard: NewLocalShard(core.NewController(testOwner)), failFirst: 1}
	if err := c.AddShard("flaky", fs); err != nil {
		t.Fatalf("AddShard: %v", err)
	}
	st, backend, err := c.shardFor("any-key")
	if err != nil {
		t.Fatalf("shardFor: %v", err)
	}
	if _, err := scatterCall(c, st, backend, true, func(s Shard) (core.HealthReport, error) {
		return s.Health()
	}); err != nil {
		t.Fatalf("hedged call failed despite transient fault: %v", err)
	}
	if c.Counters()["fed_hedges"] == 0 {
		t.Fatal("fed_hedges not counted")
	}
	if c.Counters()["fed_shard_errors"] == 0 {
		t.Fatal("fed_shard_errors not counted")
	}
}

func TestScatterCallDeadline(t *testing.T) {
	cfg := testConfig()
	cfg.QueryDeadline = 30 * time.Millisecond
	cfg.HedgeAfter = 5 * time.Millisecond
	c, err := New("", cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	hang := &hangShard{LocalShard: NewLocalShard(core.NewController(testOwner))}
	if err := c.AddShard("hang", hang); err != nil {
		t.Fatalf("AddShard: %v", err)
	}
	st, backend, err := c.shardFor("any-key")
	if err != nil {
		t.Fatalf("shardFor: %v", err)
	}
	_, err = scatterCall(c, st, backend, true, func(s Shard) (core.HealthReport, error) {
		return s.Health()
	})
	if !errors.Is(err, ErrShardTimeout) {
		t.Fatalf("err = %v, want ErrShardTimeout", err)
	}
	if c.Counters()["fed_shard_timeouts"] == 0 {
		t.Fatal("fed_shard_timeouts not counted")
	}
}

// hangShard blocks Health until the test deadline.
type hangShard struct {
	*LocalShard
}

func (h *hangShard) Health() (core.HealthReport, error) {
	time.Sleep(10 * time.Second)
	return core.HealthReport{}, nil
}

func TestCursorRoundTrip(t *testing.T) {
	pos := map[string]string{
		"shard-0":              "17",
		"http://host:8600/a=b": "3",
		"shard-2":              "",
	}
	enc := encodeFedCursor(pos)
	got, err := parseFedCursor(enc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := map[string]string{"shard-0": "17", "http://host:8600/a=b": "3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %v want %v", got, want)
	}
	if _, err := parseFedCursor("garbage"); err == nil {
		t.Fatal("garbage cursor should not parse")
	}
	if enc := encodeFedCursor(nil); enc != "" {
		t.Fatalf("empty cursor encodes to %q", enc)
	}
}

func TestMergeExperimentStatus(t *testing.T) {
	mk := func(status core.ExperimentStatus) *core.Experiment {
		return &core.Experiment{ID: "fexp-0001", Status: status}
	}
	cases := []struct {
		subs []*core.Experiment
		want core.ExperimentStatus
	}{
		{[]*core.Experiment{mk(core.StatusApproved), mk(core.StatusApproved)}, core.StatusApproved},
		{[]*core.Experiment{mk(core.StatusApproved), mk(core.StatusPending)}, core.StatusPending},
		{[]*core.Experiment{mk(core.StatusPending), mk(core.StatusRejected)}, core.StatusRejected},
		{[]*core.Experiment{nil, mk(core.StatusApproved)}, core.StatusApproved},
	}
	for i, tc := range cases {
		if got := mergeExperiments("fexp-0001", "o", "d", tc.subs).Status; got != tc.want {
			t.Fatalf("case %d: status %s, want %s", i, got, tc.want)
		}
	}
}

func TestShardStatusesSorted(t *testing.T) {
	c, _ := newHarness(t, 3, "", testConfig())
	sts := c.ShardStatuses()
	ids := make([]string, len(sts))
	for i, st := range sts {
		ids[i] = st.ID
	}
	if !sort.StringsAreSorted(ids) {
		t.Fatalf("shard statuses not sorted: %v", ids)
	}
}

// A remote shard that can't be reached at all (transport error after
// the client's retries) and one answering 503 (recovery gate,
// admission shed) are both DOWN to the routing layer — the coordinator
// must answer 503 shard_unavailable, not relabel the outage a 400. A
// real API verdict from a live shard passes through untouched.
func TestRemoteErrClassifiesShardDown(t *testing.T) {
	if remoteErr(nil) != nil {
		t.Fatal("nil error must stay nil")
	}
	transport := fmt.Errorf("core: POST /x failed after 4 attempts: dial tcp: connection refused")
	if !errors.Is(remoteErr(transport), ErrShardDown) {
		t.Fatalf("transport error not classified down: %v", remoteErr(transport))
	}
	gate := &core.APIError{Status: 503, Code: core.ErrCodeUnavailable, Message: "recovering"}
	if !errors.Is(remoteErr(gate), ErrShardDown) {
		t.Fatalf("remote 503 not classified down: %v", remoteErr(gate))
	}
	notFound := &core.APIError{Status: 404, Code: core.ErrCodeNotFound, Message: "no such experiment"}
	got := remoteErr(notFound)
	if errors.Is(got, ErrShardDown) {
		t.Fatalf("API verdict 404 must pass through, got shard-down: %v", got)
	}
	var apiErr *core.APIError
	if !errors.As(got, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("404 verdict mangled: %v", got)
	}
}
