// Package federation shards the observatory controller into N
// region/experiment shards — each a full core.Controller with its own
// journal and results store — behind a coordinator that keeps the v1
// API surface while surviving shard death. The paper's §7 Observatory
// is a continental fleet where power and uplink loss at a regional site
// is the normal case, not the exception: the coordinator routes probe
// traffic by consistent hashing over a journaled shard map, fans
// queries out with per-shard deadlines and hedged retries, returns
// *partial* results flagged degraded instead of failing whole, and
// fails a dead shard's keyspace over to a peer by snapshot ship +
// journal replay with exactly-once task completion preserved.
package federation

import (
	"fmt"
	"hash/crc32"
	"sort"
)

// DefaultVnodes is how many virtual nodes each shard contributes to the
// hash ring. More vnodes smooth the keyspace split at the cost of a
// larger (still tiny) routing table.
const DefaultVnodes = 64

// ringPoint is one virtual node: a position on the hash circle owned by
// a shard.
type ringPoint struct {
	hash  uint32
	shard string
}

// ring is a consistent-hash ring over shard IDs. It is immutable once
// built under the coordinator's lock and rebuilt on shard-map changes;
// lookups are lock-free for the holder.
//
// Ownership is deliberately health-independent: a shard's keyspace
// follows its ID, not its liveness. The durable state for a probe's
// tasks and dedup book lives in the owning shard's journal, so routing
// around a dead shard would manufacture a split brain — instead a down
// shard's keys answer 503 (shard_unavailable + Retry-After) until the
// keyspace moves *with its state* via failover under the same shard ID.
type ring struct {
	points []ringPoint
}

// newRing builds a ring over the given shard IDs with vnodes virtual
// nodes each (<= 0 means DefaultVnodes).
func newRing(shardIDs []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &ring{points: make([]ringPoint, 0, len(shardIDs)*vnodes)}
	for _, id := range shardIDs {
		for v := 0; v < vnodes; v++ {
			h := crc32.ChecksumIEEE([]byte(fmt.Sprintf("%s#%d", id, v)))
			r.points = append(r.points, ringPoint{hash: h, shard: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// owner maps a key (a probe ID) to the shard owning its keyspace: the
// first virtual node clockwise from the key's hash. Empty ring maps
// everything to "".
func (r *ring) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := crc32.ChecksumIEEE([]byte(key))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
