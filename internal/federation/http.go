package federation

// http.go is the coordinator's front end: the v1 API surface re-served
// over the shard tier. Envelopes, request ids, page shapes, and body
// caps are byte-identical to a single controller's (internal/core's
// exported envelope writers), so probes and analysts cannot tell a
// coordinator from a controller — until a shard dies, when they see
// 503 shard_unavailable on that shard's keys and degraded-but-correct
// partial query results instead of a dead platform.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"github.com/afrinet/observatory/internal/core"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/store"
	"github.com/afrinet/observatory/internal/topology"
)

// fedRoute is one coordinator endpoint.
type fedRoute struct {
	name     string
	method   string
	segs     []string
	priority core.RoutePriority
	handle   func(*Coordinator, http.ResponseWriter, *http.Request, map[string]string)
}

var fedRoutes = []fedRoute{
	{"probe_register", http.MethodPost, segsOf("/api/v1/probes/register"), core.PriorityHigh, (*Coordinator).handleRegister},
	{"probe_tasks", http.MethodGet, segsOf("/api/v1/probes/{id}/tasks"), core.PriorityHigh, (*Coordinator).handleProbeTasks},
	{"probe_results", http.MethodPost, segsOf("/api/v1/probes/{id}/results"), core.PriorityHigh, (*Coordinator).handleProbeResults},
	{"probe_heartbeat", http.MethodPost, segsOf("/api/v1/probes/{id}/heartbeat"), core.PriorityHigh, (*Coordinator).handleProbeHeartbeat},
	{"probe_sync", http.MethodPost, segsOf("/api/v1/probes/sync"), core.PriorityHigh, (*Coordinator).handleProbeSync},
	{"experiment_submit", http.MethodPost, segsOf("/api/v1/experiments"), core.PriorityHigh, (*Coordinator).handleSubmit},
	{"experiment_get", http.MethodGet, segsOf("/api/v1/experiments/{id}"), core.PriorityLow, (*Coordinator).handleExperimentGet},
	{"experiment_approve", http.MethodPost, segsOf("/api/v1/experiments/{id}/approve"), core.PriorityHigh, (*Coordinator).handleExperimentApprove},
	{"experiment_results", http.MethodGet, segsOf("/api/v1/experiments/{id}/results"), core.PriorityLow, (*Coordinator).handleExperimentResults},
	{"query", http.MethodGet, segsOf("/api/v1/query"), core.PriorityLow, (*Coordinator).handleQuery},
	{"health", http.MethodGet, segsOf("/api/v1/health"), core.PriorityHigh, (*Coordinator).handleHealth},
	{"stats", http.MethodGet, segsOf("/api/v1/stats"), core.PriorityLow, (*Coordinator).handleStats},
	{"shards", http.MethodGet, segsOf("/api/v1/shards"), core.PriorityLow, (*Coordinator).handleShards},
	{"metrics", http.MethodGet, segsOf("/metrics"), core.PriorityHigh, (*Coordinator).handleMetrics},
}

func segsOf(pattern string) []string {
	return strings.Split(strings.TrimPrefix(pattern, "/"), "/")
}

// page mirrors the v1 list-response shape, extended with the federated
// degradation annotation (absent on complete responses).
type page struct {
	Items      interface{} `json:"items"`
	NextCursor string      `json:"next_cursor,omitempty"`
	QueryMeta
}

// Handler serves the coordinator's v1 surface. Route admission runs
// through the coordinator's gate (refilled by Tick) with the same
// priorities as a controller: probe traffic sheds last.
func (c *Coordinator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		core.EnsureRequestID(w, r)
		segs := strings.Split(strings.TrimPrefix(r.URL.Path, "/"), "/")
		var allowed []string
		for i := range fedRoutes {
			rt := &fedRoutes[i]
			params, ok := matchSegs(rt.segs, segs)
			if !ok {
				continue
			}
			if rt.method != r.Method {
				allowed = append(allowed, rt.method)
				continue
			}
			release, ok := c.gate.Admit(rt.name, rt.priority)
			if !ok {
				w.Header().Set("Retry-After", strconv.Itoa(c.gate.RetryAfterSeconds()))
				core.WriteAPIError(w, http.StatusTooManyRequests, core.ErrCodeRateLimited,
					core.ErrRateLimited(rt.name))
				return
			}
			defer release()
			if r.Method == http.MethodPost {
				r.Body = http.MaxBytesReader(w, r.Body, core.MaxBodyBytes)
			}
			rt.handle(c, w, r, params)
			return
		}
		if len(allowed) > 0 {
			sort.Strings(allowed)
			w.Header().Set("Allow", strings.Join(allowed, ", "))
			core.WriteAPIError(w, http.StatusMethodNotAllowed, core.ErrCodeMethodNotAllowed,
				fmt.Errorf("method not allowed (allowed: %s)", strings.Join(allowed, ", ")))
			return
		}
		core.WriteAPIError(w, http.StatusNotFound, core.ErrCodeNotFound, errors.New("not found"))
	})
}

// matchSegs matches concrete path segments against a pattern; {name}
// captures any non-empty segment.
func matchSegs(pattern, segs []string) (map[string]string, bool) {
	if len(pattern) != len(segs) {
		return nil, false
	}
	var params map[string]string
	for i, p := range pattern {
		if strings.HasPrefix(p, "{") && strings.HasSuffix(p, "}") {
			if segs[i] == "" {
				return nil, false
			}
			if params == nil {
				params = make(map[string]string, 2)
			}
			params[p[1:len(p)-1]] = segs[i]
			continue
		}
		if p != segs[i] {
			return nil, false
		}
	}
	return params, true
}

// writeShardErr maps routing-layer failures onto the v1 envelope: a
// down or deadline-blown shard is 503 shard_unavailable with a
// Retry-After (the client retries without tripping its breaker), a
// remote shard's own API error passes through status and code intact,
// and anything else is the shard rejecting the request (400).
func (c *Coordinator) writeShardErr(w http.ResponseWriter, err error) {
	var apiErr *core.APIError
	switch {
	case errors.Is(err, ErrUnknownExperiment):
		core.WriteAPIError(w, http.StatusNotFound, core.ErrCodeNotFound, err)
	case errors.Is(err, ErrShardDown), errors.Is(err, ErrShardTimeout), errors.Is(err, ErrNoShards):
		w.Header().Set("Retry-After", strconv.Itoa(c.cfg.RetryAfterSeconds))
		core.WriteAPIError(w, http.StatusServiceUnavailable, core.ErrCodeShardUnavailable, err)
	case errors.As(err, &apiErr):
		if apiErr.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(apiErr.RetryAfter))
		}
		code := apiErr.Code
		if code == "" {
			code = core.ErrCodeUnavailable
		}
		core.WriteAPIError(w, apiErr.Status, code, err)
	default:
		core.WriteAPIError(w, http.StatusBadRequest, core.ErrCodeBadRequest, err)
	}
}

// decodeBody decodes the bounded JSON request body, writing the
// envelope itself (413 oversized, 400 otherwise).
func decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			core.WriteAPIError(w, http.StatusRequestEntityTooLarge, core.ErrCodeBodyTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		core.WriteAPIError(w, http.StatusBadRequest, core.ErrCodeBadRequest, err)
		return false
	}
	return true
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request, _ map[string]string) {
	var p core.ProbeInfo
	if !decodeBody(w, r, &p) {
		return
	}
	if err := c.Register(p); err != nil {
		c.writeShardErr(w, err)
		return
	}
	core.WriteJSON(w, http.StatusOK, map[string]string{"id": p.ID})
}

func (c *Coordinator) handleProbeTasks(w http.ResponseWriter, r *http.Request, p map[string]string) {
	max := 32
	if s := r.URL.Query().Get("max"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			core.WriteAPIError(w, http.StatusBadRequest, core.ErrCodeBadRequest,
				fmt.Errorf("max must be a non-negative integer, got %q", s))
			return
		}
		if n > 0 {
			max = n
		}
	}
	tasks, err := c.LeaseTasks(p["id"], max)
	if err != nil {
		c.writeShardErr(w, err)
		return
	}
	if tasks == nil {
		tasks = []probes.Task{}
	}
	core.WriteJSON(w, http.StatusOK, tasks)
}

func (c *Coordinator) handleProbeResults(w http.ResponseWriter, r *http.Request, p map[string]string) {
	var rs []probes.Result
	if !decodeBody(w, r, &rs) {
		return
	}
	accepted, err := c.SubmitResults(p["id"], rs)
	if err != nil {
		c.writeShardErr(w, err)
		return
	}
	core.WriteJSON(w, http.StatusOK, map[string]int{"accepted": accepted, "received": len(rs)})
}

func (c *Coordinator) handleProbeHeartbeat(w http.ResponseWriter, r *http.Request, p map[string]string) {
	if err := c.Heartbeat(p["id"]); err != nil {
		if errors.Is(err, ErrShardDown) || errors.Is(err, ErrShardTimeout) || errors.Is(err, ErrNoShards) {
			c.writeShardErr(w, err)
			return
		}
		core.WriteAPIError(w, http.StatusNotFound, core.ErrCodeNotFound, err)
		return
	}
	core.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleProbeSync serves the batched hot path through the shard tier.
// The ?wait= long-poll parameter is accepted for wire compatibility but
// not forwarded: parking belongs to the queue-owning shard, and the
// coordinator's per-shard deadline (QueryDeadline, ~2s) would cut a 30s
// park short — so a coordinator answers immediately and the probe's
// wait loop becomes a paced retry. If the owning shard is down the
// batch was not durably accepted: 503 + Retry-After, and the probe's
// spool (which only acks on success) retains it.
func (c *Coordinator) handleProbeSync(w http.ResponseWriter, r *http.Request, _ map[string]string) {
	var req core.SyncRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.ProbeID == "" {
		core.WriteAPIError(w, http.StatusBadRequest, core.ErrCodeBadRequest,
			errors.New("probe_id is required"))
		return
	}
	resp, err := c.Sync(req)
	if err != nil {
		if errors.Is(err, core.ErrUnknownProbe) {
			core.WriteAPIError(w, http.StatusNotFound, core.ErrCodeNotFound, err)
			return
		}
		c.writeShardErr(w, err)
		return
	}
	if resp.Tasks == nil {
		resp.Tasks = []probes.Task{}
	}
	core.WriteJSON(w, http.StatusOK, resp)
}

// fedSubmitRequest mirrors the controller's submission body (the "id"
// field is not accepted here — federated ids are coordinator-minted).
type fedSubmitRequest struct {
	RequestID   string              `json:"request_id,omitempty"`
	Owner       string              `json:"owner"`
	Description string              `json:"description"`
	Assignments []probes.Assignment `json:"assignments"`
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request, _ map[string]string) {
	var req fedSubmitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	exp, err := c.Submit(req.RequestID, req.Owner, req.Description, req.Assignments)
	if err != nil {
		c.writeShardErr(w, err)
		return
	}
	core.WriteJSON(w, http.StatusOK, exp)
}

func (c *Coordinator) handleExperimentGet(w http.ResponseWriter, r *http.Request, p map[string]string) {
	exp, err := c.Experiment(p["id"])
	if err != nil {
		c.writeShardErr(w, err)
		return
	}
	core.WriteJSON(w, http.StatusOK, exp)
}

func (c *Coordinator) handleExperimentApprove(w http.ResponseWriter, r *http.Request, p map[string]string) {
	if err := c.Approve(p["id"]); err != nil {
		c.writeShardErr(w, err)
		return
	}
	core.WriteJSON(w, http.StatusOK, map[string]string{"status": string(core.StatusApproved)})
}

func (c *Coordinator) handleExperimentResults(w http.ResponseWriter, r *http.Request, p map[string]string) {
	q := r.URL.Query()
	limit, ok := parseLimit(w, q.Get("limit"))
	if !ok {
		return
	}
	c.mu.Lock()
	_, known := c.fedExps[p["id"]]
	c.mu.Unlock()
	if !known {
		c.writeShardErr(w, ErrUnknownExperiment)
		return
	}
	recs, next, meta, err := c.ScanPage(store.Filter{Experiment: p["id"]}, limit, q.Get("cursor"))
	if err != nil {
		c.writeShardErr(w, err)
		return
	}
	rs := make([]probes.Result, 0, len(recs))
	for _, rec := range recs {
		rs = append(rs, rec.Result)
	}
	core.WriteJSON(w, http.StatusOK, page{Items: rs, NextCursor: next, QueryMeta: meta})
}

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request, _ map[string]string) {
	q := r.URL.Query()
	f, ok := parseFilter(w, q)
	if !ok {
		return
	}
	switch op := q.Get("op"); op {
	case "", "aggregate":
		rep, meta, err := c.Aggregate(store.AggQuery{Filter: f, GroupBy: q.Get("group_by")})
		if err != nil {
			c.writeShardErr(w, err)
			return
		}
		core.WriteJSON(w, http.StatusOK, struct {
			store.AggReport
			QueryMeta
		}{rep, meta})
	case "scan":
		limit, ok := parseLimit(w, q.Get("limit"))
		if !ok {
			return
		}
		recs, next, meta, err := c.ScanPage(f, limit, q.Get("cursor"))
		if err != nil {
			c.writeShardErr(w, err)
			return
		}
		if recs == nil {
			recs = []store.Record{}
		}
		core.WriteJSON(w, http.StatusOK, page{Items: recs, NextCursor: next, QueryMeta: meta})
	default:
		core.WriteAPIError(w, http.StatusBadRequest, core.ErrCodeBadRequest,
			fmt.Errorf("unknown op %q (want aggregate or scan)", op))
	}
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request, _ map[string]string) {
	core.WriteJSON(w, http.StatusOK, c.Health())
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request, _ map[string]string) {
	core.WriteJSON(w, http.StatusOK, c.Stats())
}

func (c *Coordinator) handleShards(w http.ResponseWriter, r *http.Request, _ map[string]string) {
	core.WriteJSON(w, http.StatusOK, page{Items: c.ShardStatuses()})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request, _ map[string]string) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = c.reg.WritePrometheus(w)
}

// parseLimit parses a ?limit= value ("" means no limit), writing the
// 400 itself.
func parseLimit(w http.ResponseWriter, s string) (int, bool) {
	if s == "" {
		return 0, true
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		core.WriteAPIError(w, http.StatusBadRequest, core.ErrCodeBadRequest,
			fmt.Errorf("limit must be a non-negative integer, got %q", s))
		return 0, false
	}
	return n, true
}

// parseFilter builds a store.Filter from query parameters, writing the
// 400 itself.
func parseFilter(w http.ResponseWriter, q map[string][]string) (store.Filter, bool) {
	get := func(k string) string {
		if vs := q[k]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	f := store.Filter{
		Experiment: get("experiment"),
		Country:    get("country"),
		Kind:       get("kind"),
	}
	if s := get("asn"); s != "" {
		n, err := strconv.ParseUint(s, 10, 32)
		if err != nil {
			core.WriteAPIError(w, http.StatusBadRequest, core.ErrCodeBadRequest,
				fmt.Errorf("asn must be an integer, got %q", s))
			return f, false
		}
		f.ASN = topology.ASN(n)
	}
	for _, tk := range []struct {
		name string
		dst  *int64
	}{{"from_tick", &f.FromTick}, {"to_tick", &f.ToTick}} {
		if s := get(tk.name); s != "" {
			n, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				core.WriteAPIError(w, http.StatusBadRequest, core.ErrCodeBadRequest,
					fmt.Errorf("%s must be an integer, got %q", tk.name, s))
				return f, false
			}
			*tk.dst = n
		}
	}
	return f, true
}
