package federation

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/afrinet/observatory/internal/core"
	"github.com/afrinet/observatory/internal/faultinject"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/store"
)

// TestShardChaosEndToEnd is the federation capstone: a seeded chaos
// schedule kills and restarts durable shards mid-experiment while
// probes keep leasing and submitting through the coordinator's HTTP
// surface and an analyst keeps querying. One extra kill is permanent,
// so tick-driven failure detection must walk that shard through
// suspect → dead and fail it over (snapshot ship + journal replay)
// onto a replacement serving the same shard id. The run must converge
// to exactly-once completion of every experiment, with degraded
// partial query results observed mid-chaos and a complete,
// non-degraded answer at the end; probe breakers must never open
// (shard death is the coordinator's 503 + Retry-After, not transport
// failure); admission shedding must be visible in /metrics; and shard
// store memtables must stay bounded.
//
// OBS_FED_CHAOS_SEED / OBS_FED_CHAOS_ROUNDS select the timeline
// (defaults 11/28; `make chaos` runs a second seed and a longer one).
func TestShardChaosEndToEnd(t *testing.T) {
	seed := int64(11)
	if v := os.Getenv("OBS_FED_CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("OBS_FED_CHAOS_SEED: %v", err)
		}
		seed = n
	}
	rounds := 28
	if v := os.Getenv("OBS_FED_CHAOS_ROUNDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 10 {
			t.Fatalf("OBS_FED_CHAOS_ROUNDS: want an int >= 10, got %q", v)
		}
		rounds = n
	}

	shardIDs := []string{"shard-0", "shard-1", "shard-2"}
	sched := faultinject.GenerateSchedule(seed, faultinject.ScheduleConfig{
		Rounds:     rounds,
		MaxWindow:  3,
		Shards:     shardIDs,
		ShardKills: 2,
	})
	t.Logf("%s", sched)

	const flushEvery = 8
	base := t.TempDir()
	shardCfg := core.DurabilityConfig{
		Trusted:         []string{"obs"},
		LeaseTTL:        3,
		SuspectAfter:    4,
		DeadAfter:       8,
		SnapshotEvery:   32,
		StoreFlushEvery: flushEvery,
	}
	fedCfg := Config{
		SuspectAfter:  1,
		DeadAfter:     2, // fast detector: a kill without a prompt restart fails over
		QueryDeadline: 5 * time.Second,
		HedgeAfter:    25 * time.Millisecond,
		AutoFailover:  true,
		Admission: core.AdmissionConfig{
			RouteRates:        map[string]core.RateLimit{"query": {PerTick: 1, Burst: 2}},
			RetryAfterSeconds: 1,
		},
	}
	coord, err := New(filepath.Join(base, "coordinator"), fedCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// dirOf tracks each shard's current durable directory — failover
	// ships state into a fresh epoch directory and moves the pointer.
	locals := map[string]*LocalShard{}
	dirOf := map[string]string{}
	for _, id := range shardIDs {
		dirOf[id] = filepath.Join(base, id)
		ctrl, err := core.Recover(dirOf[id], shardCfg)
		if err != nil {
			t.Fatalf("boot %s: %v", id, err)
		}
		locals[id] = NewLocalShard(ctrl)
		if err := coord.AddShard(id, locals[id]); err != nil {
			t.Fatal(err)
		}
	}
	coord.Failover = func(id string, epoch int) (Shard, error) {
		dst := filepath.Join(base, fmt.Sprintf("%s-epoch%d", id, epoch))
		if err := ShipState(dirOf[id], dst, "", ""); err != nil {
			return nil, err
		}
		ctrl, err := core.Recover(dst, shardCfg)
		if err != nil {
			return nil, err
		}
		dirOf[id] = dst
		locals[id].Revive(ctrl)
		return locals[id], nil
	}

	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	admin := core.NewClientSeeded(srv.URL, 99)
	admin.MaxAttempts = 4
	admin.Sleep = func(time.Duration) {}
	analyst := core.NewClientSeeded(srv.URL, 98)
	analyst.MaxAttempts = 1
	analyst.Sleep = func(time.Duration) {}

	probeIDs := make([]string, 8)
	probeCls := make([]*core.Client, len(probeIDs))
	for i := range probeIDs {
		probeIDs[i] = fmt.Sprintf("chaos-p%02d", i)
		cl := core.NewClientSeeded(srv.URL, int64(200+i))
		cl.MaxAttempts = 3
		cl.Sleep = func(time.Duration) {}
		cl.BreakerThreshold = 4 // would open fast on transport failures; 503s must not feed it
		probeCls[i] = cl
		if err := cl.Register(core.ProbeInfo{
			ID: probeIDs[i], ASN: 36924, Country: []string{"KE", "NG", "ZA", "SN"}[i%4], HasWired: true,
		}); err != nil {
			t.Fatalf("register %s: %v", probeIDs[i], err)
		}
	}

	// Three experiments land at staggered rounds, each retried with a
	// stable request id until accepted — chaos may 503 a submission, and
	// the retry must repair a partial push, never duplicate it.
	type pendingExp struct {
		reqID string
		round int
		asg   []probes.Assignment
	}
	var pending []pendingExp
	totalTasks := 0
	for k := 0; k < 3; k++ {
		var asg []probes.Assignment
		for i, pid := range probeIDs {
			n := 2 + (i+k)%2
			for j := 0; j < n; j++ {
				asg = append(asg, probes.Assignment{
					ProbeID: pid,
					Task:    probes.Task{Kind: probes.TaskPing, Target: "203.0.113.9"},
				})
			}
		}
		pending = append(pending, pendingExp{
			reqID: fmt.Sprintf("chaos-exp-%d", k),
			round: k * rounds / 4,
			asg:   asg,
		})
		totalTasks += len(asg)
	}

	// The scheduled kills may restart quickly; one extra unscheduled
	// kill at 2/3 of the timeline is permanent, guaranteeing the
	// detector must fail a shard over.
	permKillRound := 2 * rounds / 3
	permShard := shardIDs[seed%int64(len(shardIDs))]

	epochAtKill := map[string]int{}
	sawDegraded := false
	doRound := func(round int) {
		for _, e := range sched.StartingAt(round, faultinject.EventShardKill) {
			if ctrl := locals[e.Target].Kill(); ctrl != nil {
				ep, _ := coord.ShardEpoch(e.Target)
				epochAtKill[e.Target] = ep
				// A crash leaves a torn tail, not a clean close.
				tear(t, dirOf[e.Target])
			}
		}
		if round == permKillRound {
			locals[permShard].Kill()
			ep, _ := coord.ShardEpoch(permShard)
			epochAtKill[permShard] = ep
			tear(t, dirOf[permShard])
		}
		for _, e := range sched.StartingAt(round, faultinject.EventShardRestart) {
			if e.Target == permShard && round >= permKillRound {
				continue // the permanent kill stays dead until failover
			}
			if ep, _ := coord.ShardEpoch(e.Target); ep != epochAtKill[e.Target] {
				continue // failover already replaced it under a new epoch
			}
			if locals[e.Target].Controller() != nil {
				continue // never killed (kill raced an earlier revive)
			}
			ctrl, err := core.Recover(dirOf[e.Target], shardCfg)
			if err != nil {
				t.Fatalf("restart %s: %v", e.Target, err)
			}
			locals[e.Target].Revive(ctrl)
		}
		for _, pe := range pending {
			if round < pe.round {
				continue
			}
			// Idempotent: a request id that already succeeded returns the
			// same experiment and re-pushes nothing new.
			_, _ = admin.SubmitWithID(pe.reqID, "", "obs", "chaos drill", pe.asg)
		}
		for i, cl := range probeCls {
			tasks, err := cl.LeaseTasks(probeIDs[i], 4)
			if err != nil || len(tasks) == 0 {
				continue
			}
			rs := make([]probes.Result, 0, len(tasks))
			for _, task := range tasks {
				rs = append(rs, probes.Result{
					TaskID: task.ID, Experiment: task.Experiment,
					ProbeID: probeIDs[i], Kind: task.Kind, OK: true, RTTms: 40,
				})
			}
			_, _ = cl.SubmitResults(probeIDs[i], rs), cl.Heartbeat(probeIDs[i])
		}
		for i := 0; i < 3; i++ {
			recs, _, meta, err := analyst.QueryScanMeta(store.Filter{}, 0, "")
			if err == nil && meta.Degraded && len(recs) > 0 {
				sawDegraded = true // partial-but-useful: the paper's degradation contract
			}
		}
		coord.Tick(1)
	}

	for round := 0; round < rounds; round++ {
		doRound(round)
	}
	// Clear weather: keep driving until every task completes.
	converged := false
	for round := rounds; round < rounds+120; round++ {
		doRound(round)
		recs, _, meta, err := coord.ScanPage(store.Filter{}, 0, "")
		if err == nil && !meta.Degraded && len(recs) == totalTasks {
			converged = true
			break
		}
	}
	if !converged {
		recs, _, meta, err := coord.ScanPage(store.Filter{}, 0, "")
		t.Fatalf("chaos run did not converge: %d/%d records, meta=%+v, err=%v, counters=%v",
			len(recs), totalTasks, meta, err, coord.Counters())
	}

	// The detector actually walked a shard to dead and failed it over.
	ctrs := coord.Counters()
	if ctrs["fed_shard_dead"] == 0 || ctrs["fed_failovers"] == 0 {
		t.Fatalf("no dead-shard failover exercised: %v", ctrs)
	}
	if ep, ok := coord.ShardEpoch(permShard); !ok || ep == 0 {
		t.Fatalf("permanently killed %s still at epoch %d", permShard, ep)
	}

	// Exactly-once, checked against the shards directly so federated
	// dedup cannot mask a double-write: across every current backend,
	// each (experiment, task) key appears exactly once.
	perKey := map[string]int{}
	for id, ls := range locals {
		recs, _, err := ls.ScanPage(store.Filter{}, 0, "")
		if err != nil {
			t.Fatalf("final scan of %s: %v", id, err)
		}
		for _, r := range recs {
			perKey[r.Key()]++
		}
	}
	if len(perKey) != totalTasks {
		t.Fatalf("distinct task keys = %d, want %d", len(perKey), totalTasks)
	}
	for k, n := range perKey {
		if n != 1 {
			t.Fatalf("key %s recorded %d times across shards", k, n)
		}
	}

	// Mid-chaos partial degradation was actually observed.
	if sawDegraded {
		if ctrs["fed_degraded_queries"] == 0 {
			t.Fatalf("degraded queries seen by the analyst but not counted: %v", ctrs)
		}
	} else if ctrs["fed_degraded_queries"] == 0 {
		t.Fatalf("no degraded query in the whole run (seed %d): chaos tested nothing", seed)
	}

	// Shard death surfaced as 503 + Retry-After, not transport failure:
	// no probe breaker ever opened, and Retry-After was honored.
	honored := int64(0)
	for i, cl := range probeCls {
		rc := cl.ResilienceCounters()
		if rc["breaker_open_total"] != 0 {
			t.Fatalf("probe %s breaker opened during shard chaos: %v", probeIDs[i], rc)
		}
		honored += rc["retry_after_honored"]
	}
	if honored == 0 {
		t.Fatal("no probe ever honored a coordinator Retry-After")
	}

	// Load shedding is observable from outside through /metrics.
	for i := 0; i < 4; i++ {
		_, _ = analyst.QueryAggregate(store.Filter{}, "")
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	shed := int64(-1)
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, `obs_admission_events_total{name="requests_shed"} `); ok {
			shed, _ = strconv.ParseInt(rest, 10, 64)
		}
	}
	if shed <= 0 {
		t.Fatalf("requests_shed = %d in /metrics, want > 0", shed)
	}

	// Memory stays bounded however long the chaos ran.
	for id, ls := range locals {
		ctrl := ls.Controller()
		if ctrl == nil {
			t.Fatalf("shard %s ended the run dead", id)
		}
		if got := ctrl.ResultStore().MemtableLen(); got >= flushEvery {
			t.Fatalf("%s memtable holds %d records, flush threshold is %d", id, got, flushEvery)
		}
	}

	if len(sched.Events) == 0 {
		t.Fatal("empty chaos schedule; the drill tested nothing")
	}
}

// tear appends garbage to a shard journal's tail, simulating the torn
// partial append a real crash leaves behind.
func tear(t *testing.T, dir string) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, "journal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()
}
