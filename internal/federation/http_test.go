package federation

import (
	"errors"

	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/afrinet/observatory/internal/core"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/store"
)

// The coordinator's HTTP surface must be indistinguishable from a
// single controller's to the existing client — until a shard dies,
// when clients see 503 shard_unavailable (with Retry-After, without
// tripping their breaker) on that shard's keys and degraded partial
// query results elsewhere.

func newHTTPHarness(t *testing.T, n int) (*core.Client, *Coordinator, []*LocalShard) {
	t.Helper()
	c, shards := newHarness(t, n, "", testConfig())
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	cl := core.NewClientSeeded(srv.URL, 7)
	cl.Sleep = func(time.Duration) {} // no real sleeping in retries
	return cl, c, shards
}

func TestHTTPEndToEndFlow(t *testing.T) {
	cl, _, _ := newHTTPHarness(t, 3)
	ps := testProbes(8)
	for _, p := range ps {
		if err := cl.Register(p); err != nil {
			t.Fatalf("Register: %v", err)
		}
	}
	exp, err := cl.Submit(testOwner, "http flow", testAssignments(ps, 1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if exp.Status != core.StatusApproved {
		t.Fatalf("status %s, want approved", exp.Status)
	}
	done := 0
	for _, p := range ps {
		for {
			tasks, err := cl.LeaseTasks(p.ID, 4)
			if err != nil {
				t.Fatalf("LeaseTasks: %v", err)
			}
			if len(tasks) == 0 {
				break
			}
			rs := make([]probes.Result, 0, len(tasks))
			for _, task := range tasks {
				rs = append(rs, probes.Result{
					TaskID: task.ID, Experiment: task.Experiment,
					ProbeID: p.ID, Kind: task.Kind, OK: true, RTTms: 12,
				})
			}
			if err := cl.SubmitResults(p.ID, rs); err != nil {
				t.Fatalf("SubmitResults: %v", err)
			}
			done += len(rs)
			if err := cl.Heartbeat(p.ID); err != nil {
				t.Fatalf("Heartbeat: %v", err)
			}
		}
	}
	if done != len(ps) {
		t.Fatalf("completed %d tasks, want %d", done, len(ps))
	}
	// Query surface: scan + aggregate with clean (non-degraded) meta.
	recs, _, meta, err := cl.QueryScanMeta(store.Filter{Experiment: exp.ID}, 0, "")
	if err != nil {
		t.Fatalf("QueryScanMeta: %v", err)
	}
	if meta.Degraded || len(recs) != done {
		t.Fatalf("scan: degraded=%v len=%d want %d", meta.Degraded, len(recs), done)
	}
	rep, meta, err := cl.QueryAggregateMeta(store.Filter{}, store.GroupCountry)
	if err != nil || meta.Degraded {
		t.Fatalf("QueryAggregateMeta: err=%v degraded=%v", err, meta.Degraded)
	}
	if rep.Matched != int64(done) {
		t.Fatalf("aggregate matched %d, want %d", rep.Matched, done)
	}
	// Experiment results page maps records to bare results.
	rs, err := cl.Results(exp.ID)
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	if len(rs) != done {
		t.Fatalf("experiment results %d, want %d", len(rs), done)
	}
	// Shard map reports three live shards at epoch 0.
	infos, err := cl.ShardMap()
	if err != nil {
		t.Fatalf("ShardMap: %v", err)
	}
	if len(infos) != 3 {
		t.Fatalf("shard map has %d entries, want 3", len(infos))
	}
	for _, si := range infos {
		if si.Epoch != 0 || si.Health != string(core.ProbeAlive) {
			t.Fatalf("shard %+v, want epoch 0 alive", si)
		}
	}
	if _, err := cl.Health(); err != nil {
		t.Fatalf("Health: %v", err)
	}
	if _, err := cl.Stats(); err != nil {
		t.Fatalf("Stats: %v", err)
	}
}

func TestHTTPDeadShardIs503NotBreakerFood(t *testing.T) {
	cl, _, shards := newHTTPHarness(t, 2)
	cl.BreakerThreshold = 1 // hair trigger: any transport failure would open it
	ps := testProbes(8)
	for _, p := range ps {
		if err := cl.Register(p); err != nil {
			t.Fatalf("Register: %v", err)
		}
	}
	for _, ls := range shards {
		ls.Kill()
	}
	var apiErr *core.APIError
	for _, p := range ps {
		_, err := cl.LeaseTasks(p.ID, 4)
		if err == nil {
			t.Fatalf("lease for %s succeeded with every shard dead", p.ID)
		}
		if !errors.As(err, &apiErr) {
			t.Fatalf("lease error %v is not an APIError", err)
		}
		if apiErr.Status != http.StatusServiceUnavailable || apiErr.Code != core.ErrCodeShardUnavailable {
			t.Fatalf("got %d %s, want 503 %s", apiErr.Status, apiErr.Code, core.ErrCodeShardUnavailable)
		}
		if apiErr.RetryAfter <= 0 {
			t.Fatalf("503 carried RetryAfter %d, want > 0", apiErr.RetryAfter)
		}
	}
	ctrs := cl.ResilienceCounters()
	if ctrs["breaker_open_total"] != 0 {
		t.Fatalf("server-side 503s opened the client breaker: %v", ctrs)
	}
	if ctrs["retry_after_honored"] == 0 {
		t.Fatalf("client never honored the coordinator's Retry-After: %v", ctrs)
	}
}

func TestHTTPDegradedQueryAnnotation(t *testing.T) {
	cl, c, shards := newHTTPHarness(t, 3)
	ps := testProbes(12)
	exp, accepted := pumpResults(t, c, ps, 1)
	shards[1].Kill()
	recs, _, meta, err := cl.QueryScanMeta(store.Filter{Experiment: exp.ID}, 0, "")
	if err != nil {
		t.Fatalf("degraded scan must be 200, got %v", err)
	}
	if !meta.Degraded || len(meta.ShardsMissing) != 1 || meta.ShardsMissing[0] != "shard-1" {
		t.Fatalf("meta = %+v, want degraded with shard-1 missing", meta)
	}
	if len(recs) >= accepted {
		t.Fatalf("degraded scan returned %d records, want < %d", len(recs), accepted)
	}
	if _, meta, err := cl.QueryAggregateMeta(store.Filter{}, store.GroupNone); err != nil || !meta.Degraded {
		t.Fatalf("degraded aggregate: err=%v meta=%+v", err, meta)
	}
	// Health degrades but stays 200.
	h, err := cl.Health()
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.Status == "ok" {
		t.Fatal("health reports ok with a dead shard")
	}
}

func TestHTTPErrorSurface(t *testing.T) {
	cl, _, _ := newHTTPHarness(t, 2)
	var apiErr *core.APIError
	// Unknown federated experiment is a 404.
	if _, err := cl.Experiment("fexp-9999"); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("unknown experiment: %v", err)
	}
	if _, err := cl.Results("fexp-9999"); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("unknown experiment results: %v", err)
	}
	// Wrong method gets 405 + Allow; bad op and bad params get 400.
	srv := httptest.NewServer(newHarnessHandler(t))
	defer srv.Close()
	for _, tc := range []struct {
		method, path string
		wantStatus   int
	}{
		{http.MethodDelete, "/api/v1/experiments", http.StatusMethodNotAllowed},
		{http.MethodGet, "/api/v1/query?op=frobnicate", http.StatusBadRequest},
		{http.MethodGet, "/api/v1/query?op=scan&limit=-2", http.StatusBadRequest},
		{http.MethodGet, "/api/v1/query?op=scan&asn=xyz", http.StatusBadRequest},
		{http.MethodGet, "/api/v1/query?op=scan&cursor=garbage", http.StatusBadRequest},
		{http.MethodGet, "/api/v1/nope", http.StatusNotFound},
	} {
		req, _ := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
		if tc.wantStatus == http.StatusMethodNotAllowed && resp.Header.Get("Allow") == "" {
			t.Fatalf("%s %s: 405 without Allow header", tc.method, tc.path)
		}
		if resp.Header.Get("X-Request-ID") == "" {
			t.Fatalf("%s %s: response without request id", tc.method, tc.path)
		}
	}
}

func newHarnessHandler(t *testing.T) http.Handler {
	t.Helper()
	c, _ := newHarness(t, 2, "", testConfig())
	return c.Handler()
}

func TestHTTPAdmissionSheds(t *testing.T) {
	cfg := testConfig()
	cfg.Admission = core.AdmissionConfig{
		RouteRates: map[string]core.RateLimit{"stats": {PerTick: 1, Burst: 2}},
	}
	c, _ := newHarness(t, 2, "", cfg)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	shed := 0
	for i := 0; i < 10; i++ {
		resp, err := http.Get(srv.URL + "/api/v1/stats")
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			shed++
		}
	}
	if shed == 0 {
		t.Fatal("admission gate never shed low-priority traffic")
	}
	// Tick refills the gate.
	c.Tick(1)
	resp, err := http.Get(srv.URL + "/api/v1/stats")
	if err != nil {
		t.Fatalf("stats after refill: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-refill stats status %d, want 200", resp.StatusCode)
	}
}
