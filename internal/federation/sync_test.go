package federation

// sync_test.go covers the batched hot path through the coordinator:
// ring-routed sync rounds, unknown probes as 404, and the dead-shard
// contract — 503 shard_unavailable with Retry-After while the probe's
// spool keeps the undelivered batch intact for the retry.

import (
	"errors"
	"net/http"
	"testing"

	"github.com/afrinet/observatory/internal/core"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/spool"
)

// TestFederatedSyncRoutesByRing drives a fleet through coordinator-side
// Sync rounds only — no per-call lease/submit/heartbeat endpoints — and
// checks every result lands on the probe's owning shard with nothing
// lost or duplicated.
func TestFederatedSyncRoutesByRing(t *testing.T) {
	c, shards := newHarness(t, 3, "", testConfig())
	ps := testProbes(12)
	for _, p := range ps {
		if err := c.Register(p); err != nil {
			t.Fatalf("Register(%s): %v", p.ID, err)
		}
	}
	const perProbe = 5
	if _, err := c.Submit("req-sync", testOwner, "sync workload", testAssignments(ps, perProbe)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	delivered := 0
	for _, p := range ps {
		var outbox []probes.Result
		for {
			resp, err := c.Sync(core.SyncRequest{ProbeID: p.ID, Results: outbox, Max: 2})
			if err != nil {
				t.Fatalf("Sync(%s): %v", p.ID, err)
			}
			delivered += resp.Accepted
			if len(resp.Tasks) == 0 && len(outbox) == 0 {
				break
			}
			outbox = outbox[:0]
			for _, task := range resp.Tasks {
				outbox = append(outbox, probes.Result{
					TaskID: task.ID, Experiment: task.Experiment,
					ProbeID: p.ID, Kind: task.Kind, OK: true, RTTms: 12,
				})
			}
		}
	}
	if want := len(ps) * perProbe; delivered != want {
		t.Fatalf("delivered %d results, want %d", delivered, want)
	}
	// Each shard recorded exactly its ring partition's share, and the
	// shares cover the whole fleet.
	total := int64(0)
	for i, ls := range shards {
		n := ls.Controller().Stats().Counters["results_recorded"]
		if n == 0 {
			t.Fatalf("shard %d recorded nothing — ring did not spread the fleet", i)
		}
		total += n
	}
	if total != int64(len(ps)*perProbe) {
		t.Fatalf("shards recorded %d results total, want %d", total, len(ps)*perProbe)
	}
}

// TestFederatedSyncUnknownProbe: the coordinator must surface the
// owning shard's unknown-probe rejection as a 404, same as a single
// controller.
func TestFederatedSyncUnknownProbe(t *testing.T) {
	cl, _, _ := newHTTPHarness(t, 2)
	_, err := cl.Sync(core.SyncRequest{ProbeID: "ghost"}, 0)
	if err == nil {
		t.Fatal("sync for unregistered probe succeeded")
	}
	var apiErr *core.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("got %v, want 404 APIError", err)
	}
}

// TestFederatedSyncDeadShardRetainsSpool is the failure-mode half of
// the batched contract: when the owning shard dies mid-fleet, the sync
// round fails with 503 + Retry-After (no breaker food), the probe's
// spool still holds the whole undelivered batch, and reviving the
// shard lets the identical retry deliver it.
func TestFederatedSyncDeadShardRetainsSpool(t *testing.T) {
	cl, c, shards := newHTTPHarness(t, 2)
	p := core.ProbeInfo{ID: "probe-00", ASN: 64500, Country: "KE"}
	if err := cl.Register(p); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := c.Submit("req-dead", testOwner, "doomed round", testAssignments([]core.ProbeInfo{p}, 3)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Lease the tasks and execute them into a durable spool, as
	// DrainWithSync would.
	resp, err := cl.Sync(core.SyncRequest{ProbeID: p.ID, Max: 3}, 0)
	if err != nil {
		t.Fatalf("lease round: %v", err)
	}
	if len(resp.Tasks) != 3 {
		t.Fatalf("leased %d tasks, want 3", len(resp.Tasks))
	}
	sp, err := spool.Open(t.TempDir(), spool.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	for _, task := range resp.Tasks {
		if err := sp.Append(probes.Result{
			TaskID: task.ID, Experiment: task.Experiment,
			ProbeID: p.ID, Kind: task.Kind, OK: true, RTTms: 9,
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Kill every shard: the owning shard is certainly down.
	killed := make([]*core.Controller, len(shards))
	for i, ls := range shards {
		killed[i] = ls.Kill()
	}
	rs, upTo := sp.DrainBatch(64)
	_, err = cl.Sync(core.SyncRequest{ProbeID: p.ID, Results: rs, Max: 3}, 0)
	if err == nil {
		t.Fatal("delivery round succeeded against a dead shard")
	}
	var apiErr *core.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("dead-shard error %v is not an APIError", err)
	}
	if apiErr.Status != http.StatusServiceUnavailable || apiErr.Code != core.ErrCodeShardUnavailable {
		t.Fatalf("got %d %s, want 503 %s", apiErr.Status, apiErr.Code, core.ErrCodeShardUnavailable)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatalf("503 carried RetryAfter %d, want > 0", apiErr.RetryAfter)
	}
	// The contract that makes the failure safe: acks only follow
	// acceptance, so the batch is still spooled.
	if sp.Len() != 3 {
		t.Fatalf("spool holds %d results after failed round, want 3", sp.Len())
	}

	// Revive and retry the identical frame: delivered exactly once.
	for i, ls := range shards {
		ls.Revive(killed[i])
	}
	resp2, err := cl.Sync(core.SyncRequest{ProbeID: p.ID, Results: rs, Max: -1}, 0)
	if err != nil {
		t.Fatalf("retry after revive: %v", err)
	}
	if resp2.Accepted != 3 {
		t.Fatalf("retry accepted %d, want 3", resp2.Accepted)
	}
	if err := sp.AckBatch(upTo); err != nil {
		t.Fatal(err)
	}
	if sp.Len() != 0 {
		t.Fatalf("spool holds %d results after ack, want 0", sp.Len())
	}
}
