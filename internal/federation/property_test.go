package federation

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/afrinet/observatory/internal/core"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/store"
	"github.com/afrinet/observatory/internal/topology"
)

// The federation property: for any workload, a federated query must
// answer exactly what a single store holding the union of every
// responsive shard's records would answer. The oracle below IS that
// single store — shard scans merged in (seq, shard) order, deduplicated
// by key, replayed into one store.NewMemory — and the federated
// ScanPage walk and Aggregate are compared against it, including the
// degraded case where one shard is permanently dead.

func randomWorkload(t *testing.T, rng *rand.Rand, c *Coordinator) []core.ProbeInfo {
	t.Helper()
	countries := []string{"KE", "NG", "ZA", "SN", "EG"}
	nProbes := 6 + rng.Intn(8)
	ps := make([]core.ProbeInfo, nProbes)
	for i := range ps {
		ps[i] = core.ProbeInfo{
			ID:       fmt.Sprintf("p%02d", i),
			ASN:      topology.ASN(64500 + rng.Intn(5)),
			Country:  countries[rng.Intn(len(countries))],
			HasWired: rng.Intn(2) == 0,
		}
		if err := c.Register(ps[i]); err != nil {
			t.Fatalf("Register: %v", err)
		}
	}
	nExps := 1 + rng.Intn(3)
	for e := 0; e < nExps; e++ {
		var as []probes.Assignment
		for _, p := range ps {
			for j := 0; j < 1+rng.Intn(3); j++ {
				kind := probes.TaskPing
				if rng.Intn(3) == 0 {
					kind = probes.TaskDNS
				}
				as = append(as, probes.Assignment{
					ProbeID: p.ID,
					Task:    probes.Task{Kind: kind, Target: "198.51.100.7", Domain: "example.org"},
				})
			}
		}
		if _, err := c.Submit(fmt.Sprintf("prop-req-%d", e), testOwner, "prop", as); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	for _, p := range ps {
		for {
			tasks, err := c.LeaseTasks(p.ID, 1+rng.Intn(6))
			if err != nil {
				t.Fatalf("LeaseTasks: %v", err)
			}
			if len(tasks) == 0 {
				break
			}
			rs := make([]probes.Result, 0, len(tasks))
			for _, task := range tasks {
				rs = append(rs, probes.Result{
					TaskID:     task.ID,
					Experiment: task.Experiment,
					ProbeID:    p.ID,
					Kind:       task.Kind,
					OK:         rng.Intn(10) != 0,
					RTTms:      10 + rng.Float64()*200,
				})
			}
			if _, err := c.SubmitResults(p.ID, rs); err != nil {
				t.Fatalf("SubmitResults: %v", err)
			}
		}
	}
	return ps
}

// buildOracle replays the union of the given shards' records, in the
// same (seq, shard) merge order the coordinator uses, into one store.
func buildOracle(t *testing.T, shards map[string]*LocalShard) *store.Store {
	t.Helper()
	var merged []taggedRecord
	for id, ls := range shards {
		recs, _, err := ls.ScanPage(store.Filter{}, 0, "")
		if err != nil {
			t.Fatalf("oracle scan of %s: %v", id, err)
		}
		for _, r := range recs {
			merged = append(merged, taggedRecord{rec: r, shard: id})
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].rec.Seq != merged[j].rec.Seq {
			return merged[i].rec.Seq < merged[j].rec.Seq
		}
		return merged[i].shard < merged[j].shard
	})
	oracle := store.NewMemory(store.Options{})
	seen := map[string]bool{}
	for _, tr := range merged {
		if seen[tr.rec.Key()] {
			continue
		}
		seen[tr.rec.Key()] = true
		r := tr.rec
		r.Seq = 0 // the oracle assigns its own
		if err := oracle.Append(r); err != nil {
			t.Fatalf("oracle append: %v", err)
		}
	}
	return oracle
}

func stripSeq(recs []store.Record) []store.Record {
	out := make([]store.Record, len(recs))
	for i, r := range recs {
		r.Seq = 0
		out[i] = r
	}
	return out
}

func randomFilters(rng *rand.Rand) []store.Filter {
	return []store.Filter{
		{},
		{Experiment: fmt.Sprintf("fexp-%04d", 1+rng.Intn(3))},
		{Country: []string{"KE", "NG", "ZA", "SN", "EG"}[rng.Intn(5)]},
		{ASN: topology.ASN(64500 + rng.Intn(5))},
		{Kind: string(probes.TaskPing)},
	}
}

func checkAgainstOracle(t *testing.T, rng *rand.Rand, c *Coordinator, oracle *store.Store, wantDegraded bool) {
	t.Helper()
	groupBys := []string{store.GroupNone, store.GroupCountry, store.GroupASN, store.GroupCountryASN}
	for fi, f := range randomFilters(rng) {
		// Scan: walk federated pages with a random page size; the
		// concatenation must equal the oracle's full scan, minus seq.
		limit := 1 + rng.Intn(20)
		var fed []store.Record
		cursor := ""
		for {
			recs, next, meta, err := c.ScanPage(f, limit, cursor)
			if err != nil {
				t.Fatalf("filter %d: fed scan: %v", fi, err)
			}
			if meta.Degraded != wantDegraded {
				t.Fatalf("filter %d: degraded=%v, want %v", fi, meta.Degraded, wantDegraded)
			}
			fed = append(fed, recs...)
			// A dead shard's position is carried forward verbatim so a
			// later page can retry it; a client that doesn't want to wait
			// stops when a page makes no progress.
			if next == "" || next == cursor {
				break
			}
			cursor = next
		}
		want, _, err := oracle.ScanPage(f, 0, "")
		if err != nil {
			t.Fatalf("filter %d: oracle scan: %v", fi, err)
		}
		if !reflect.DeepEqual(stripSeq(fed), stripSeq(want)) {
			t.Fatalf("filter %d (%+v): federated scan diverges from oracle:\n fed  %d records\n want %d records",
				fi, f, len(fed), len(want))
		}
		// Aggregate: the federated fold must equal the oracle's.
		gb := groupBys[rng.Intn(len(groupBys))]
		fedRep, meta, err := c.Aggregate(store.AggQuery{Filter: f, GroupBy: gb})
		if err != nil {
			t.Fatalf("filter %d: fed aggregate: %v", fi, err)
		}
		if meta.Degraded != wantDegraded {
			t.Fatalf("filter %d: aggregate degraded=%v, want %v", fi, meta.Degraded, wantDegraded)
		}
		wantRep, err := oracle.Aggregate(store.AggQuery{Filter: f, GroupBy: gb})
		if err != nil {
			t.Fatalf("filter %d: oracle aggregate: %v", fi, err)
		}
		if !reflect.DeepEqual(fedRep, wantRep) {
			t.Fatalf("filter %d (%+v, group %s): federated aggregate diverges:\n fed  %+v\n want %+v",
				fi, f, gb, fedRep, wantRep)
		}
	}
}

func TestFederatedQueryMatchesOracle(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c, shardList := newHarness(t, 3, "", testConfig())
			randomWorkload(t, rng, c)

			all := map[string]*LocalShard{}
			for i, ls := range shardList {
				all[fmt.Sprintf("shard-%d", i)] = ls
			}
			checkAgainstOracle(t, rng, c, buildOracle(t, all), false)

			// One shard dies permanently: every query degrades, and the
			// answers must equal the oracle over the survivors only.
			deadIdx := rng.Intn(len(shardList))
			deadID := fmt.Sprintf("shard-%d", deadIdx)
			survivors := map[string]*LocalShard{}
			for id, ls := range all {
				if id != deadID {
					survivors[id] = ls
				}
			}
			oracle := buildOracle(t, survivors) // before the kill: scans need the shard
			shardList[deadIdx].Kill()
			checkAgainstOracle(t, rng, c, oracle, true)
		})
	}
}
