package federation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/afrinet/observatory/internal/store"
)

// QueryMeta annotates a federated query response. Degraded reports that
// at least one shard could not answer within its deadline (after a
// hedged retry): the results are genuinely partial, the listed shards'
// records are absent, and the caller decides whether partial is good
// enough — the alternative, failing the whole query because one region
// is dark, is exactly what the paper's observatory cannot afford.
type QueryMeta struct {
	Degraded      bool     `json:"degraded,omitempty"`
	ShardsMissing []string `json:"shards_missing,omitempty"`
}

// Composite cursors encode one per-shard sequence position per segment:
// "shardA=17;shardB=40". Shard IDs may be URL-ish (the -coordinator
// mode uses base URLs as IDs), so each segment splits on its LAST '='.

func parseFedCursor(cursor string) (map[string]string, error) {
	out := make(map[string]string)
	if cursor == "" {
		return out, nil
	}
	for _, seg := range strings.Split(cursor, ";") {
		i := strings.LastIndex(seg, "=")
		if i <= 0 || i == len(seg)-1 {
			return nil, fmt.Errorf("federation: bad cursor segment %q", seg)
		}
		out[seg[:i]] = seg[i+1:]
	}
	return out, nil
}

func encodeFedCursor(pos map[string]string) string {
	ids := make([]string, 0, len(pos))
	for id, p := range pos {
		if p != "" {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return ""
	}
	sort.Strings(ids)
	segs := make([]string, 0, len(ids))
	for _, id := range ids {
		segs = append(segs, id+"="+pos[id])
	}
	return strings.Join(segs, ";")
}

// taggedRecord pairs a record with the shard it came from so the merge
// order — (Seq, shard id) — is total and deterministic.
type taggedRecord struct {
	rec   store.Record
	shard string
}

// shardScan is one shard's contribution to a fan-out.
type shardScan struct {
	id      string
	recs    []store.Record
	next    string
	err     error
	skipped bool // no position to fetch (exhausted on a previous page)
}

// scatterScans fans ScanPage out to every shard in parallel under the
// per-shard deadline with hedged retries, one goroutine per shard.
// Results come back positionally — nothing shared is written.
func (c *Coordinator) scatterScans(f store.Filter, limit int, pos map[string]string, fetch map[string]bool) []shardScan {
	targets, ids := c.allTargets()
	scans := make([]shardScan, len(targets))
	var wg sync.WaitGroup
	for i := range targets {
		scans[i].id = ids[i]
		if fetch != nil && !fetch[ids[i]] {
			scans[i].skipped = true
			continue
		}
		wg.Add(1)
		go func(i int, t shardTarget) {
			defer wg.Done()
			type page struct {
				recs []store.Record
				next string
			}
			p, err := scatterCall(c, t.st, t.backend, true, func(s Shard) (page, error) {
				recs, next, err := s.ScanPage(f, limit, pos[scans[i].id])
				return page{recs: recs, next: next}, err
			})
			scans[i].recs, scans[i].next, scans[i].err = p.recs, p.next, err
		}(i, targets[i])
	}
	wg.Wait()
	return scans
}

// ScanPage is the federated record scan: every shard's matching records
// merged in (sequence, shard) order, limit at a time, behind a
// composite cursor that tracks one position per shard. Duplicate
// (experiment, task) keys are collapsed first-wins within the page
// fan-out; by routing every probe's results to one owning shard — an
// ownership that failover preserves, since the replacement serves the
// same shard ID — cross-shard duplicates do not arise in normal
// operation. Shards that cannot answer degrade the response instead of
// failing it; their cursor positions are carried forward untouched so a
// later page retries them. Every shard failing is an error.
func (c *Coordinator) ScanPage(f store.Filter, limit int, cursor string) ([]store.Record, string, QueryMeta, error) {
	var meta QueryMeta
	pos, err := parseFedCursor(cursor)
	if err != nil {
		return nil, "", meta, err
	}
	c.mu.Lock()
	nShards := len(c.order)
	c.mu.Unlock()
	if nShards == 0 {
		return nil, "", meta, ErrNoShards
	}
	c.ctr.Inc("fed_queries")

	// A shard with an empty position on a non-empty cursor was
	// exhausted by an earlier page: don't re-fetch it from the start.
	var fetch map[string]bool
	if cursor != "" {
		fetch = make(map[string]bool, len(pos))
		for id := range pos {
			fetch[id] = true
		}
	}
	scans := c.scatterScans(f, limit, pos, fetch)

	merged := make([]taggedRecord, 0, 64)
	nextPos := make(map[string]string, len(scans))
	for _, sc := range scans {
		if sc.skipped {
			continue
		}
		if sc.err != nil {
			meta.Degraded = true
			meta.ShardsMissing = append(meta.ShardsMissing, sc.id)
			// Carry the shard's position forward so a later page can
			// pick it back up once the shard answers again.
			if p := pos[sc.id]; p != "" {
				nextPos[sc.id] = p
			} else {
				nextPos[sc.id] = "0" // from the beginning, explicitly
			}
			continue
		}
		for _, r := range sc.recs {
			merged = append(merged, taggedRecord{rec: r, shard: sc.id})
		}
	}
	if meta.Degraded {
		sort.Strings(meta.ShardsMissing)
		c.ctr.Inc("fed_degraded_queries")
		if len(meta.ShardsMissing) == nShards {
			return nil, "", meta, fmt.Errorf("federation: all %d shards unavailable: %w", nShards, ErrShardDown)
		}
	}

	sort.Slice(merged, func(i, j int) bool {
		if merged[i].rec.Seq != merged[j].rec.Seq {
			return merged[i].rec.Seq < merged[j].rec.Seq
		}
		return merged[i].shard < merged[j].shard
	})

	seen := make(map[string]bool, len(merged))
	out := make([]store.Record, 0, len(merged))
	consumed := make(map[string]uint64, len(scans)) // highest seq taken per shard
	for _, tr := range merged {
		if limit > 0 && len(out) >= limit {
			break
		}
		consumed[tr.shard] = tr.rec.Seq
		k := tr.rec.Key()
		if seen[k] {
			c.ctr.Inc("fed_records_deduped")
			continue
		}
		seen[k] = true
		out = append(out, tr.rec)
	}

	// Next composite cursor: a shard we consumed fully follows its own
	// next-page cursor (gone when exhausted); a partially-consumed shard
	// resumes after its last consumed seq; a fetched-but-untouched shard
	// keeps its incoming position. Skipped (already-exhausted) shards
	// stay absent.
	for _, sc := range scans {
		if sc.skipped || sc.err != nil {
			continue
		}
		seq, took := consumed[sc.id]
		switch {
		case !took:
			if len(sc.recs) > 0 || sc.next != "" {
				if p := pos[sc.id]; p != "" {
					nextPos[sc.id] = p
				} else {
					nextPos[sc.id] = "0"
				}
			}
		case len(sc.recs) > 0 && seq >= sc.recs[len(sc.recs)-1].Seq:
			if sc.next != "" {
				nextPos[sc.id] = sc.next
			}
		default:
			nextPos[sc.id] = strconv.FormatUint(seq, 10)
		}
	}
	return out, encodeFedCursor(nextPos), meta, nil
}

// Aggregate is the federated aggregation: full matching scans from
// every shard, merged and deduplicated centrally, then folded by
// store.AggregateRecords — percentiles do not compose across shards,
// so the fold runs over the merged record set, which is byte-for-byte
// what a single store holding every record would compute. Unresponsive
// shards degrade the report (their records are absent); all shards
// failing is an error.
func (c *Coordinator) Aggregate(q store.AggQuery) (store.AggReport, QueryMeta, error) {
	var meta QueryMeta
	if err := store.ValidGroupBy(q.GroupBy); err != nil {
		return store.AggReport{}, meta, err
	}
	c.mu.Lock()
	nShards := len(c.order)
	c.mu.Unlock()
	if nShards == 0 {
		return store.AggReport{}, meta, ErrNoShards
	}
	c.ctr.Inc("fed_queries")

	scans := c.scatterScans(q.Filter, 0, nil, nil)
	merged := make([]taggedRecord, 0, 64)
	for _, sc := range scans {
		if sc.err != nil {
			meta.Degraded = true
			meta.ShardsMissing = append(meta.ShardsMissing, sc.id)
			continue
		}
		for _, r := range sc.recs {
			merged = append(merged, taggedRecord{rec: r, shard: sc.id})
		}
	}
	if meta.Degraded {
		sort.Strings(meta.ShardsMissing)
		c.ctr.Inc("fed_degraded_queries")
		if len(meta.ShardsMissing) == nShards {
			return store.AggReport{}, meta, fmt.Errorf("federation: all %d shards unavailable: %w", nShards, ErrShardDown)
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].rec.Seq != merged[j].rec.Seq {
			return merged[i].rec.Seq < merged[j].rec.Seq
		}
		return merged[i].shard < merged[j].shard
	})
	seen := make(map[string]bool, len(merged))
	recs := make([]store.Record, 0, len(merged))
	for _, tr := range merged {
		k := tr.rec.Key()
		if seen[k] {
			c.ctr.Inc("fed_records_deduped")
			continue
		}
		seen[k] = true
		recs = append(recs, tr.rec)
	}
	rep, err := store.AggregateRecords(recs, q.GroupBy)
	if err != nil {
		return store.AggReport{}, meta, err
	}
	return rep, meta, nil
}
