package federation

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/afrinet/observatory/internal/core"
	"github.com/afrinet/observatory/internal/journal"
	"github.com/afrinet/observatory/internal/metrics"
	"github.com/afrinet/observatory/internal/obs"
	"github.com/afrinet/observatory/internal/probes"
)

// ErrNoShards is returned for key routing against an empty shard map.
var ErrNoShards = errors.New("federation: no shards in the map")

// ErrUnknownExperiment marks a federated-experiment id the coordinator
// never minted; the HTTP layer maps it to 404.
var ErrUnknownExperiment = errors.New("federation: unknown experiment")

// FailoverFunc builds a replacement backend for a dead shard. It runs
// outside the coordinator lock and typically ships the dead shard's
// durable state to a fresh directory (ShipState) and recovers a new
// controller there (core.Recover). epoch is the incarnation the
// replacement will serve as — useful for naming the destination dir.
type FailoverFunc func(id string, epoch int) (Shard, error)

// Config tunes the coordinator. The zero value gets the documented
// defaults.
type Config struct {
	// Vnodes per shard on the consistent-hash ring (DefaultVnodes).
	Vnodes int
	// SuspectAfter / DeadAfter are how many silent coordinator ticks
	// move a shard to suspect / dead — the probe-liveness state machine
	// reapplied one level up (defaults 3 / 6).
	SuspectAfter int64
	DeadAfter    int64
	// QueryDeadline bounds each per-shard call in a fan-out; a shard
	// that blows it is treated as missing for that query (default 2s).
	QueryDeadline time.Duration
	// HedgeAfter launches a second attempt against the same shard if
	// the first hasn't answered yet — tail-latency insurance for
	// idempotent calls (default 250ms; <= 0 disables hedging).
	HedgeAfter time.Duration
	// RetryAfterSeconds is the delay suggested on shard_unavailable
	// responses (default 2).
	RetryAfterSeconds int
	// AutoFailover lets Tick fail a dead shard over through the
	// Failover hook as soon as it is declared dead.
	AutoFailover bool
	// Admission bounds the coordinator front end; zero admits all.
	Admission core.AdmissionConfig
}

func (c Config) withDefaults() Config {
	if c.Vnodes <= 0 {
		c.Vnodes = DefaultVnodes
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = 2 * c.SuspectAfter
	}
	if c.QueryDeadline <= 0 {
		c.QueryDeadline = 2 * time.Second
	}
	if c.RetryAfterSeconds <= 0 {
		c.RetryAfterSeconds = 2
	}
	return c
}

// Journaled coordinator mutations. Shard membership and federated
// submissions are the coordinator's durable truth — a restarted
// coordinator must re-route the same keys to the same shard IDs and
// dedup retried submissions — while shard *health* is run-scoped
// observation, rebuilt by probing, and deliberately not journaled.
type shardAddOp struct {
	ID string `json:"id"`
}

type shardFailoverOp struct {
	ID    string `json:"id"`
	Epoch int    `json:"epoch"`
}

type fedSubmitOp struct {
	FedID       string   `json:"fed_id"`
	RequestID   string   `json:"request_id"`
	Owner       string   `json:"owner"`
	Description string   `json:"description"`
	Shards      []string `json:"shards"`
}

// fedExperiment is the coordinator's book on one federated experiment:
// which shards hold its partitions.
type fedExperiment struct {
	ID     string
	Owner  string
	Shards []string
}

// shardState is the coordinator's book on one shard.
type shardState struct {
	id      string
	epoch   int
	backend Shard // nil until attached (recovered coordinator)
	health  core.ProbeHealth
	// lastSeen is the coordinator tick of the last successful health
	// probe (or attach), driving the alive→suspect→dead machine.
	lastSeen int64
	hist     *obs.Histogram
}

// ShardStatus is one shard's externally-visible state, served by
// GET /api/v1/shards.
type ShardStatus struct {
	ID     string           `json:"id"`
	Epoch  int              `json:"epoch"`
	Health core.ProbeHealth `json:"health"`
}

// Coordinator fronts N shards with the v1 API: probe traffic routes to
// the owning shard by consistent hashing, experiments fan out to every
// owning shard, and queries scatter-gather with per-shard deadlines,
// hedged retries, and partial-result degradation. Membership and
// federated submissions are journaled (append-then-apply, like the
// controller) so a coordinator restart preserves routing and submission
// idempotency.
type Coordinator struct {
	mu        sync.Mutex
	cfg       Config
	shards    map[string]*shardState
	order     []string // sorted shard IDs — the deterministic fan-out order
	ring      *ring
	submitIDs map[string]string // client requestID → federated experiment id
	fedExps   map[string]*fedExperiment
	nextFedID int
	tick      int64
	log       *journal.Log // nil for in-memory coordinators

	reg  *obs.Registry
	ctr  *metrics.CounterSet
	gate *core.AdmissionGate

	// Failover builds replacement backends for dead shards; nil
	// disables failover even when cfg.AutoFailover is set.
	Failover FailoverFunc
}

// New opens (or creates) a coordinator journaled at dir and replays its
// shard map and submission book. dir == "" runs in-memory (tests).
// Backends are not part of the journal: after a recovery the shards
// exist with nil backends and health dead until AddShard re-attaches
// them.
func New(dir string, cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:       cfg,
		shards:    make(map[string]*shardState),
		ring:      newRing(nil, cfg.Vnodes),
		submitIDs: make(map[string]string),
		fedExps:   make(map[string]*fedExperiment),
		reg:       obs.NewRegistry(),
		ctr:       metrics.NewCounterSet(),
		gate:      core.NewAdmissionGate(cfg.Admission),
	}
	c.reg.AddCounters("obs_fed_events_total", c.ctr.Snapshot)
	c.reg.AddCounters("obs_admission_events_total", c.gate.Snapshot)
	if dir == "" {
		return c, nil
	}
	log, err := journal.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("federation: %w", err)
	}
	for _, rec := range log.Records {
		if err := c.applyRecord(rec); err != nil {
			log.Close()
			return nil, err
		}
	}
	if log.TornTail {
		c.ctr.Inc("fed_recovery_truncated_tail")
	}
	c.ctr.Add("fed_recovery_replayed", int64(len(log.Records)))
	c.log = log
	return c, nil
}

// Close releases the coordinator journal. Shard backends are owned by
// the caller.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.log == nil {
		return nil
	}
	err := c.log.Close()
	c.log = nil
	return err
}

// Observability returns the coordinator's metrics registry (the /metrics
// payload).
func (c *Coordinator) Observability() *obs.Registry { return c.reg }

// Counters snapshots the coordinator's event counters.
func (c *Coordinator) Counters() map[string]int64 { return c.ctr.Snapshot() }

// Gate exposes the coordinator's admission gate to the HTTP front end.
func (c *Coordinator) Gate() *core.AdmissionGate { return c.gate }

func (c *Coordinator) applyRecord(rec journal.Record) error {
	switch rec.Kind {
	case "shard_add":
		var op shardAddOp
		if err := decodeOp(rec, &op); err != nil {
			return err
		}
		c.applyShardAddLocked(op)
	case "shard_failover":
		var op shardFailoverOp
		if err := decodeOp(rec, &op); err != nil {
			return err
		}
		c.applyShardFailoverLocked(op, nil)
	case "fed_submit":
		var op fedSubmitOp
		if err := decodeOp(rec, &op); err != nil {
			return err
		}
		c.applyFedSubmitLocked(op)
	default:
		return fmt.Errorf("federation: unknown journal record kind %q", rec.Kind)
	}
	return nil
}

func decodeOp(rec journal.Record, v any) error {
	if err := json.Unmarshal(rec.Data, v); err != nil {
		return fmt.Errorf("federation: decoding %s: %w", rec.Kind, err)
	}
	return nil
}

// appendLocked journals one coordinator mutation; nil log = in-memory.
func (c *Coordinator) appendLocked(kind string, v any) error {
	if c.log == nil {
		return nil
	}
	if _, err := c.log.Append(kind, v); err != nil {
		return fmt.Errorf("federation: %w", err)
	}
	return nil
}

func (c *Coordinator) applyShardAddLocked(op shardAddOp) {
	if _, ok := c.shards[op.ID]; ok {
		return
	}
	c.shards[op.ID] = &shardState{
		id:     op.ID,
		health: core.ProbeDead, // dead until a backend attaches
		hist:   c.reg.Hist("obs_fed_shard_seconds", "shard", op.ID),
	}
	c.order = append(c.order, op.ID)
	sort.Strings(c.order)
	c.ring = newRing(c.order, c.cfg.Vnodes)
}

func (c *Coordinator) applyShardFailoverLocked(op shardFailoverOp, replacement Shard) {
	st, ok := c.shards[op.ID]
	if !ok {
		// A failover record for a shard the snapshot-less journal never
		// added cannot happen (failover journals after add); tolerate it
		// by materializing the shard.
		c.applyShardAddLocked(shardAddOp{ID: op.ID})
		st = c.shards[op.ID]
	}
	st.epoch = op.Epoch
	if replacement != nil {
		st.backend = replacement
		st.health = core.ProbeAlive
		st.lastSeen = c.tick
	} else {
		st.backend = nil
		st.health = core.ProbeDead
	}
}

func (c *Coordinator) applyFedSubmitLocked(op fedSubmitOp) {
	if _, ok := c.fedExps[op.FedID]; !ok {
		c.fedExps[op.FedID] = &fedExperiment{ID: op.FedID, Owner: op.Owner, Shards: op.Shards}
	}
	if op.RequestID != "" {
		c.submitIDs[op.RequestID] = op.FedID
	}
	var n int
	if _, err := fmt.Sscanf(op.FedID, "fexp-%04d", &n); err == nil && n > c.nextFedID {
		c.nextFedID = n
	}
}

// AddShard adds a shard to the journaled map (idempotent by ID) and
// attaches its backend. Re-attaching after a coordinator restart hits
// the replayed entry and only installs the backend — no duplicate
// journal record.
func (c *Coordinator) AddShard(id string, backend Shard) error {
	if id == "" {
		return errors.New("federation: empty shard id")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.shards[id]; !ok {
		op := shardAddOp{ID: id}
		if err := c.appendLocked("shard_add", op); err != nil {
			return err
		}
		c.applyShardAddLocked(op)
	}
	st := c.shards[id]
	st.backend = backend
	if backend != nil {
		st.health = core.ProbeAlive
		st.lastSeen = c.tick
	}
	return nil
}

// FailoverShard replaces a shard's backend through the Failover hook,
// bumping its journaled epoch. The hook runs outside the lock (it ships
// state and replays a journal); the swap is journaled before it is
// applied, like every other mutation.
func (c *Coordinator) FailoverShard(id string) error {
	c.mu.Lock()
	st, ok := c.shards[id]
	hook := c.Failover
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("federation: unknown shard %q", id)
	}
	if hook == nil {
		c.mu.Unlock()
		return errors.New("federation: no failover hook configured")
	}
	epoch := st.epoch + 1
	c.mu.Unlock()

	replacement, err := hook(id, epoch)
	if err != nil {
		c.ctr.Inc("fed_failover_errors")
		return fmt.Errorf("federation: failover of %s: %w", id, err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if cur := c.shards[id]; cur == nil || cur.epoch >= epoch {
		// Lost a race with a concurrent failover; drop our replacement.
		c.ctr.Inc("fed_failover_races")
		return nil
	}
	op := shardFailoverOp{ID: id, Epoch: epoch}
	if err := c.appendLocked("shard_failover", op); err != nil {
		return err
	}
	c.applyShardFailoverLocked(op, replacement)
	c.ctr.Inc("fed_failovers")
	return nil
}

// ShardStatuses reports every shard's id, epoch, and health, sorted by
// id.
func (c *Coordinator) ShardStatuses() []ShardStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ShardStatus, 0, len(c.order))
	for _, id := range c.order {
		st := c.shards[id]
		out = append(out, ShardStatus{ID: st.id, Epoch: st.epoch, Health: st.health})
	}
	return out
}

// ShardEpoch returns a shard's current incarnation (0, false for an
// unknown id). Chaos harnesses use it to detect that a failover won the
// race against a planned restart.
func (c *Coordinator) ShardEpoch(id string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.shards[id]
	if !ok {
		return 0, false
	}
	return st.epoch, true
}

// Tick advances the coordinator's logical clock by n: admission buckets
// refill, every live backend's own clock advances, and each shard is
// health-probed, driving the alive→suspect→dead machine. A shard that
// reaches dead is failed over when AutoFailover and the hook are set.
func (c *Coordinator) Tick(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	c.tick += int64(n)
	now := c.tick
	type probeTarget struct {
		st      *shardState
		backend Shard
	}
	targets := make([]probeTarget, 0, len(c.order))
	for _, id := range c.order {
		st := c.shards[id]
		targets = append(targets, probeTarget{st: st, backend: st.backend})
	}
	c.mu.Unlock()

	c.gate.Refill(n)

	// Advance + probe in parallel: a hung shard must not stall the
	// other shards' clocks past its own deadline.
	var wg sync.WaitGroup
	alive := make([]bool, len(targets))
	for i, t := range targets {
		if t.backend == nil {
			continue
		}
		wg.Add(1)
		go func(i int, t probeTarget) {
			defer wg.Done()
			_, err := scatterCall(c, t.st, t.backend, false, func(s Shard) (struct{}, error) {
				if err := s.Tick(n); err != nil {
					return struct{}{}, err
				}
				_, err := s.Health()
				return struct{}{}, err
			})
			alive[i] = err == nil
		}(i, t)
	}
	wg.Wait()

	var failover []string
	c.mu.Lock()
	for i, t := range targets {
		st := t.st
		if alive[i] {
			st.lastSeen = now
			if st.health != core.ProbeAlive {
				c.ctr.Inc("fed_shard_recovered")
			}
			st.health = core.ProbeAlive
			continue
		}
		silent := now - st.lastSeen
		switch {
		case silent >= c.cfg.DeadAfter:
			if st.health != core.ProbeDead {
				c.ctr.Inc("fed_shard_dead")
			}
			st.health = core.ProbeDead
			if c.cfg.AutoFailover && c.Failover != nil {
				failover = append(failover, st.id)
			}
		case silent >= c.cfg.SuspectAfter:
			if st.health == core.ProbeAlive {
				c.ctr.Inc("fed_shard_suspect")
			}
			if st.health != core.ProbeDead {
				st.health = core.ProbeSuspect
			}
		}
	}
	c.mu.Unlock()

	for _, id := range failover {
		if err := c.FailoverShard(id); err != nil {
			c.ctr.Inc("fed_autofailover_deferred")
		}
	}
}

// shardFor routes a key (a probe ID) to its owning shard.
func (c *Coordinator) shardFor(key string) (*shardState, Shard, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.ring.owner(key)
	if id == "" {
		return nil, nil, ErrNoShards
	}
	st := c.shards[id]
	return st, st.backend, nil
}

// attemptResult carries one attempt's outcome through a channel —
// hedged attempts must never write captured variables.
type attemptResult[T any] struct {
	v   T
	err error
}

// scatterCall runs op against one shard under the per-shard deadline,
// optionally hedging a second attempt after HedgeAfter (or immediately
// on a retryable error). allowHedge must be false for non-idempotent
// ops (LeaseTasks — a hedge could double-lease).
func scatterCall[T any](c *Coordinator, st *shardState, backend Shard, allowHedge bool, op func(Shard) (T, error)) (T, error) {
	var zero T
	if backend == nil {
		return zero, ErrShardDown
	}
	ch := make(chan attemptResult[T], 2)
	attempt := func() {
		t := obs.StartTimer()
		v, err := op(backend)
		st.hist.Observe(t.Elapsed())
		ch <- attemptResult[T]{v: v, err: err}
	}
	go attempt()

	var hedgeC <-chan time.Time
	if allowHedge && c.cfg.HedgeAfter > 0 {
		ht := time.NewTimer(c.cfg.HedgeAfter)
		defer ht.Stop()
		hedgeC = ht.C
	}
	dl := time.NewTimer(c.cfg.QueryDeadline)
	defer dl.Stop()

	hedged := false
	inflight := 1
	var lastErr error
	for {
		select {
		case r := <-ch:
			inflight--
			if r.err == nil {
				return r.v, nil
			}
			lastErr = r.err
			c.ctr.Inc("fed_shard_errors")
			if errors.Is(r.err, ErrShardDown) {
				return zero, r.err // definitive: hedging a dead slot is pointless
			}
			if allowHedge && !hedged {
				hedged = true
				inflight++
				c.ctr.Inc("fed_hedges")
				go attempt()
				continue
			}
			if inflight == 0 {
				return zero, lastErr
			}
		case <-hedgeC:
			hedgeC = nil
			if !hedged {
				hedged = true
				inflight++
				c.ctr.Inc("fed_hedges")
				go attempt()
			}
		case <-dl.C:
			// Leaked attempts finish into the buffered channel.
			c.ctr.Inc("fed_shard_timeouts")
			return zero, ErrShardTimeout
		}
	}
}

// Register routes a probe registration to its owning shard.
func (c *Coordinator) Register(p core.ProbeInfo) error {
	st, backend, err := c.shardFor(p.ID)
	if err != nil {
		return err
	}
	_, err = scatterCall(c, st, backend, true, func(s Shard) (struct{}, error) {
		return struct{}{}, s.Register(p)
	})
	return err
}

// Heartbeat routes a probe heartbeat to its owning shard.
func (c *Coordinator) Heartbeat(probeID string) error {
	st, backend, err := c.shardFor(probeID)
	if err != nil {
		return err
	}
	_, err = scatterCall(c, st, backend, true, func(s Shard) (struct{}, error) {
		return struct{}{}, s.Heartbeat(probeID)
	})
	return err
}

// LeaseTasks routes a lease request to the probe's owning shard. Never
// hedged: two racing lease attempts would both consume leases.
func (c *Coordinator) LeaseTasks(probeID string, max int) ([]probes.Task, error) {
	st, backend, err := c.shardFor(probeID)
	if err != nil {
		return nil, err
	}
	return scatterCall(c, st, backend, false, func(s Shard) ([]probes.Task, error) {
		return s.LeaseTasks(probeID, max)
	})
}

// Sync routes a batched heartbeat+results+lease round to the probe's
// owning shard. Never hedged: the response can carry a lease, and two
// racing sync attempts would both consume leases (same rule as
// LeaseTasks). A shard-layer failure means the batch was (as far as we
// know) not durably accepted, so the caller must keep it spooled.
func (c *Coordinator) Sync(req core.SyncRequest) (core.SyncResponse, error) {
	st, backend, err := c.shardFor(req.ProbeID)
	if err != nil {
		return core.SyncResponse{}, err
	}
	return scatterCall(c, st, backend, false, func(s Shard) (core.SyncResponse, error) {
		return s.Sync(req)
	})
}

// SubmitResults routes a result batch to the probe's owning shard.
// Hedging is safe: the shard dedups by (experiment, task).
func (c *Coordinator) SubmitResults(probeID string, rs []probes.Result) (int, error) {
	st, backend, err := c.shardFor(probeID)
	if err != nil {
		return 0, err
	}
	return scatterCall(c, st, backend, true, func(s Shard) (int, error) {
		return s.SubmitResults(probeID, rs)
	})
}

// Submit partitions an experiment's assignments by probe owner and
// creates the same federated experiment id on every owning shard. The
// (requestID → fedID) binding is journaled before any shard sees the
// push, so a coordinator crash cannot mint two ids for one client
// retry; the per-shard push is idempotent (per-shard request ids), so a
// retry after a partial failure re-pushes only what is missing.
func (c *Coordinator) Submit(requestID, owner, description string, as []probes.Assignment) (*core.Experiment, error) {
	c.mu.Lock()
	if len(c.order) == 0 {
		c.mu.Unlock()
		return nil, ErrNoShards
	}
	// Partition by assignment index: routing is pure ring math over the
	// probe id.
	partIdx := make(map[string][]int)
	for i, a := range as {
		id := c.ring.owner(a.ProbeID)
		partIdx[id] = append(partIdx[id], i)
	}
	owners := make([]string, 0, len(partIdx))
	for id := range partIdx {
		owners = append(owners, id)
	}
	sort.Strings(owners)

	var fedID string
	var replay bool
	if requestID != "" {
		fedID, replay = c.submitIDs[requestID]
	}
	if !replay {
		op := fedSubmitOp{
			FedID:       fmt.Sprintf("fexp-%04d", c.nextFedID+1),
			RequestID:   requestID,
			Owner:       owner,
			Description: description,
			Shards:      owners,
		}
		if err := c.appendLocked("fed_submit", op); err != nil {
			c.mu.Unlock()
			return nil, err
		}
		c.applyFedSubmitLocked(op)
		fedID = op.FedID
		c.ctr.Inc("fed_submits")
	} else {
		c.ctr.Inc("fed_submit_dedup")
	}
	targets := make(map[string]shardTarget, len(owners))
	for _, id := range owners {
		st := c.shards[id]
		targets[id] = shardTarget{st: st, backend: st.backend}
	}
	c.mu.Unlock()

	// Fill empty task ids centrally, by position in the federated
	// submission: letting each shard auto-mint would collide across
	// shards (every shard would mint fedID-t0000), corrupting the
	// global (experiment, task) dedup identity. A client retry carries
	// the same assignments in the same order, so the fill is stable.
	filled := append([]probes.Assignment(nil), as...)
	for i := range filled {
		if filled[i].Task.ID == "" {
			filled[i].Task.ID = fmt.Sprintf("%s-t%04d", fedID, i)
		}
	}

	// Push partitions in deterministic order. Hedging is safe: the
	// per-shard request id makes redelivery a dedup hit.
	subs := make([]*core.Experiment, 0, len(owners))
	for _, id := range owners {
		t := targets[id]
		part := make([]probes.Assignment, 0, len(partIdx[id]))
		for _, i := range partIdx[id] {
			part = append(part, filled[i])
		}
		sub, err := scatterCall(c, t.st, t.backend, true, func(s Shard) (*core.Experiment, error) {
			return s.SubmitWithID("fed:"+fedID+":"+id, fedID, owner, description, part)
		})
		if err != nil {
			return nil, fmt.Errorf("federation: pushing %s to shard %s: %w", fedID, id, err)
		}
		subs = append(subs, sub)
	}
	return mergeExperiments(fedID, owner, description, subs), nil
}

// Approve fans an experiment approval out to every owning shard.
func (c *Coordinator) Approve(fedID string) error {
	fed, targets, err := c.experimentTargets(fedID)
	if err != nil {
		return err
	}
	for i, t := range targets {
		_, err := scatterCall(c, t.st, t.backend, true, func(s Shard) (struct{}, error) {
			return struct{}{}, s.Approve(fedID)
		})
		if err != nil {
			return fmt.Errorf("federation: approving %s on shard %s: %w", fedID, fed.Shards[i], err)
		}
	}
	return nil
}

// Experiment gathers a federated experiment's partitions from its
// owning shards and merges them. A shard that lost the push (crash
// between journal and push, before any client retry) contributes
// nothing; a shard that cannot answer fails the read — experiment state
// must never be silently partial, unlike result queries.
func (c *Coordinator) Experiment(fedID string) (*core.Experiment, error) {
	fed, targets, err := c.experimentTargets(fedID)
	if err != nil {
		return nil, err
	}
	subs := make([]*core.Experiment, 0, len(targets))
	for i, t := range targets {
		sub, err := scatterCall(c, t.st, t.backend, true, func(s Shard) (*core.Experiment, error) {
			return s.Experiment(fedID)
		})
		if err != nil {
			return nil, fmt.Errorf("federation: reading %s from shard %s: %w", fedID, fed.Shards[i], err)
		}
		if sub != nil {
			subs = append(subs, sub)
		}
	}
	return mergeExperiments(fedID, fed.Owner, "", subs), nil
}

type shardTarget struct {
	st      *shardState
	backend Shard
}

func (c *Coordinator) experimentTargets(fedID string) (*fedExperiment, []shardTarget, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fed, ok := c.fedExps[fedID]
	if !ok {
		return nil, nil, ErrUnknownExperiment
	}
	targets := make([]shardTarget, 0, len(fed.Shards))
	for _, id := range fed.Shards {
		st := c.shards[id]
		if st == nil {
			return nil, nil, fmt.Errorf("federation: experiment %s references unknown shard %s", fedID, id)
		}
		targets = append(targets, shardTarget{st: st, backend: st.backend})
	}
	return fed, targets, nil
}

// mergeExperiments folds per-shard sub-experiments into the federated
// view: assignments concatenated in shard order, status pending if any
// partition is pending, rejected if any is rejected, else approved.
func mergeExperiments(fedID, owner, description string, subs []*core.Experiment) *core.Experiment {
	out := &core.Experiment{ID: fedID, Owner: owner, Description: description, Status: core.StatusApproved}
	anyPending, anyRejected := false, false
	for _, sub := range subs {
		if sub == nil {
			continue
		}
		if out.Description == "" {
			out.Description = sub.Description
		}
		out.Assignments = append(out.Assignments, sub.Assignments...)
		switch sub.Status {
		case core.StatusPending:
			anyPending = true
		case core.StatusRejected:
			anyRejected = true
		}
	}
	switch {
	case anyRejected:
		out.Status = core.StatusRejected
	case anyPending:
		out.Status = core.StatusPending
	}
	return out
}

// Health aggregates every responsive shard's health report. Status is
// "degraded" when any shard is unresponsive or degraded.
func (c *Coordinator) Health() core.HealthReport {
	targets, _ := c.allTargets()
	out := core.HealthReport{Status: "ok"}
	c.mu.Lock()
	out.Tick = c.tick
	c.mu.Unlock()
	for _, t := range targets {
		rep, err := scatterCall(c, t.st, t.backend, true, func(s Shard) (core.HealthReport, error) {
			return s.Health()
		})
		if err != nil {
			out.Status = "degraded"
			continue
		}
		if rep.Status != "ok" {
			out.Status = "degraded"
		}
		out.ProbesAlive += rep.ProbesAlive
		out.ProbesSuspect += rep.ProbesSuspect
		out.ProbesDead += rep.ProbesDead
		out.QueuedTasks += rep.QueuedTasks
		out.OutstandingLeases += rep.OutstandingLeases
	}
	return out
}

// FedStats is the coordinator's /api/v1/stats payload: its own event
// and admission counters plus each responsive shard's StatsReport.
type FedStats struct {
	Tick        int64                       `json:"tick"`
	Coordinator map[string]int64            `json:"coordinator"`
	Admission   map[string]int64            `json:"admission,omitempty"`
	Shards      map[string]core.StatsReport `json:"shards"`
	ShardsDown  []string                    `json:"shards_down,omitempty"`
}

// Stats gathers per-shard stats; unresponsive shards are listed in
// ShardsDown rather than failing the read.
func (c *Coordinator) Stats() FedStats {
	targets, ids := c.allTargets()
	out := FedStats{
		Coordinator: c.ctr.Snapshot(),
		Admission:   c.gate.Snapshot(),
		Shards:      make(map[string]core.StatsReport, len(targets)),
	}
	c.mu.Lock()
	out.Tick = c.tick
	c.mu.Unlock()
	for i, t := range targets {
		rep, err := scatterCall(c, t.st, t.backend, true, func(s Shard) (core.StatsReport, error) {
			return s.Stats()
		})
		if err != nil {
			out.ShardsDown = append(out.ShardsDown, ids[i])
			continue
		}
		out.Shards[ids[i]] = rep
	}
	return out
}

// allTargets snapshots every shard's state and backend in sorted-id
// order.
func (c *Coordinator) allTargets() ([]shardTarget, []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	targets := make([]shardTarget, 0, len(c.order))
	ids := make([]string, 0, len(c.order))
	for _, id := range c.order {
		st := c.shards[id]
		targets = append(targets, shardTarget{st: st, backend: st.backend})
		ids = append(ids, id)
	}
	return targets, ids
}

// RetryAfterSeconds is the delay suggested on shard_unavailable
// responses.
func (c *Coordinator) RetryAfterSeconds() int { return c.cfg.RetryAfterSeconds }
