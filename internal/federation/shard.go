package federation

import (
	"errors"
	"fmt"
	"net/http"
	"path/filepath"

	"github.com/afrinet/observatory/internal/core"
	"github.com/afrinet/observatory/internal/journal"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/store"
)

// ErrShardDown is returned by a shard backend that is known-dead (a
// killed LocalShard, or a detached backend after coordinator recovery).
// The coordinator maps it to 503 shard_unavailable + Retry-After.
var ErrShardDown = errors.New("federation: shard down")

// ErrShardTimeout is returned when a shard call outlived its per-shard
// deadline. Query fan-outs degrade around it; single-shard probe ops
// surface it as shard_unavailable.
var ErrShardTimeout = errors.New("federation: shard call deadline exceeded")

// Shard is a controller backend the coordinator routes to. Two
// implementations: LocalShard wraps an in-process core.Controller
// (obsd -shards mode, and every federation test), HTTPShard wraps a
// core.Client against a remote controller (obsd -coordinator mode).
type Shard interface {
	Register(p core.ProbeInfo) error
	Heartbeat(probeID string) error
	LeaseTasks(probeID string, max int) ([]probes.Task, error)
	SubmitResults(probeID string, rs []probes.Result) (int, error)
	// Sync runs the batched probe hot path (heartbeat + result upload +
	// lease) as one shard call. Never hedged by the coordinator: the
	// response may carry a lease.
	Sync(req core.SyncRequest) (core.SyncResponse, error)
	// SubmitWithID creates a sub-experiment under the coordinator's
	// federated id, idempotent per requestID.
	SubmitWithID(requestID, expID, owner, description string, as []probes.Assignment) (*core.Experiment, error)
	Approve(expID string) error
	// Experiment returns (nil, nil) for an unknown id; errors are
	// transport/availability failures.
	Experiment(expID string) (*core.Experiment, error)
	ScanPage(f store.Filter, limit int, cursor string) ([]store.Record, string, error)
	Aggregate(q store.AggQuery) (store.AggReport, error)
	Health() (core.HealthReport, error)
	Stats() (core.StatsReport, error)
	// Tick advances the shard's logical clock (lease expiry, probe
	// liveness, admission refill). HTTP shards run their own tick loop
	// and no-op here.
	Tick(n int) error
}

// LocalShard wraps an in-process core.Controller behind a swappable
// slot, so chaos harnesses (and failover) can kill the backend — every
// call returns ErrShardDown — and later revive it with a recovered
// controller without the coordinator holding a stale pointer.
type LocalShard struct {
	slot chan *core.Controller // 1-buffered; nil value = down
}

// NewLocalShard wraps a controller (nil starts the shard down).
func NewLocalShard(c *core.Controller) *LocalShard {
	s := &LocalShard{slot: make(chan *core.Controller, 1)}
	s.slot <- c
	return s
}

// Kill marks the shard down and returns the controller it held (nil if
// already down) for the caller to crash or close. In-flight calls that
// already fetched the controller finish against it — exactly like
// requests racing a real process death.
func (s *LocalShard) Kill() *core.Controller {
	c := <-s.slot
	s.slot <- nil
	return c
}

// Revive installs a (typically recovered) controller, bringing the
// shard back up.
func (s *LocalShard) Revive(c *core.Controller) {
	<-s.slot
	s.slot <- c
}

// Controller returns the current backend controller, nil when down.
func (s *LocalShard) Controller() *core.Controller {
	c := <-s.slot
	s.slot <- c
	return c
}

func (s *LocalShard) ctrl() (*core.Controller, error) {
	c := <-s.slot
	s.slot <- c
	if c == nil {
		return nil, ErrShardDown
	}
	return c, nil
}

func (s *LocalShard) Register(p core.ProbeInfo) error {
	c, err := s.ctrl()
	if err != nil {
		return err
	}
	return c.RegisterProbe(p)
}

func (s *LocalShard) Heartbeat(probeID string) error {
	c, err := s.ctrl()
	if err != nil {
		return err
	}
	return c.Heartbeat(probeID)
}

func (s *LocalShard) LeaseTasks(probeID string, max int) ([]probes.Task, error) {
	c, err := s.ctrl()
	if err != nil {
		return nil, err
	}
	return c.LeaseTasks(probeID, max), nil
}

func (s *LocalShard) SubmitResults(probeID string, rs []probes.Result) (int, error) {
	c, err := s.ctrl()
	if err != nil {
		return 0, err
	}
	return c.SubmitResults(probeID, rs)
}

func (s *LocalShard) Sync(req core.SyncRequest) (core.SyncResponse, error) {
	c, err := s.ctrl()
	if err != nil {
		return core.SyncResponse{}, err
	}
	return c.SyncProbe(req.ProbeID, req.Results, req.Max)
}

func (s *LocalShard) SubmitWithID(requestID, expID, owner, description string, as []probes.Assignment) (*core.Experiment, error) {
	c, err := s.ctrl()
	if err != nil {
		return nil, err
	}
	return c.SubmitExperimentWithID(requestID, expID, owner, description, as)
}

func (s *LocalShard) Approve(expID string) error {
	c, err := s.ctrl()
	if err != nil {
		return err
	}
	return c.Approve(expID)
}

func (s *LocalShard) Experiment(expID string) (*core.Experiment, error) {
	c, err := s.ctrl()
	if err != nil {
		return nil, err
	}
	exp, ok := c.Experiment(expID)
	if !ok {
		return nil, nil
	}
	return exp, nil
}

func (s *LocalShard) ScanPage(f store.Filter, limit int, cursor string) ([]store.Record, string, error) {
	c, err := s.ctrl()
	if err != nil {
		return nil, "", err
	}
	return c.ScanResults(f, limit, cursor)
}

func (s *LocalShard) Aggregate(q store.AggQuery) (store.AggReport, error) {
	c, err := s.ctrl()
	if err != nil {
		return store.AggReport{}, err
	}
	return c.AggregateResults(q)
}

func (s *LocalShard) Health() (core.HealthReport, error) {
	c, err := s.ctrl()
	if err != nil {
		return core.HealthReport{}, err
	}
	return c.Health(), nil
}

func (s *LocalShard) Stats() (core.StatsReport, error) {
	c, err := s.ctrl()
	if err != nil {
		return core.StatsReport{}, err
	}
	return c.Stats(), nil
}

func (s *LocalShard) Tick(n int) error {
	c, err := s.ctrl()
	if err != nil {
		return err
	}
	c.Tick(n)
	return nil
}

// HTTPShard is a Shard backed by a remote controller over its v1 API —
// what obsd -coordinator mode routes to. The client's own retry policy
// applies per call; the coordinator's per-shard deadline bounds the
// whole attempt envelope.
type HTTPShard struct {
	cl *core.Client
}

// NewHTTPShard wraps a client.
func NewHTTPShard(cl *core.Client) *HTTPShard { return &HTTPShard{cl: cl} }

// remoteErr classifies a client error for the coordinator's routing
// layer. A transport-level failure (connection refused, timeout — any
// error that is not a decoded API response, surfacing after the
// client's own retries) means the shard is unreachable, as does a 503
// from the remote (its recovery gate or admission shed): both become
// ErrShardDown so the coordinator answers 503 shard_unavailable +
// Retry-After instead of mislabeling the outage a 400. Real API
// verdicts (400/404/...) pass through untouched — the shard is up and
// said no.
func remoteErr(err error) error {
	if err == nil {
		return nil
	}
	var apiErr *core.APIError
	if errors.As(err, &apiErr) && apiErr.Status != http.StatusServiceUnavailable {
		return err
	}
	return fmt.Errorf("%w: %v", ErrShardDown, err)
}

func (s *HTTPShard) Register(p core.ProbeInfo) error { return remoteErr(s.cl.Register(p)) }
func (s *HTTPShard) Heartbeat(probeID string) error  { return remoteErr(s.cl.Heartbeat(probeID)) }
func (s *HTTPShard) Tick(int) error                  { return nil } // remote shards run their own tick loop

func (s *HTTPShard) LeaseTasks(probeID string, max int) ([]probes.Task, error) {
	ts, err := s.cl.LeaseTasks(probeID, max)
	return ts, remoteErr(err)
}

func (s *HTTPShard) SubmitResults(probeID string, rs []probes.Result) (int, error) {
	if err := s.cl.SubmitResults(probeID, rs); err != nil {
		return 0, remoteErr(err)
	}
	return len(rs), nil
}

// Sync forwards the batch without a wait: long-polling belongs between
// the probe and the coordinator's front end, not inside a per-shard
// deadline that would cut the park short.
func (s *HTTPShard) Sync(req core.SyncRequest) (core.SyncResponse, error) {
	resp, err := s.cl.Sync(req, 0)
	return resp, remoteErr(err)
}

func (s *HTTPShard) SubmitWithID(requestID, expID, owner, description string, as []probes.Assignment) (*core.Experiment, error) {
	exp, err := s.cl.SubmitWithID(requestID, expID, owner, description, as)
	return exp, remoteErr(err)
}

func (s *HTTPShard) Approve(expID string) error { return remoteErr(s.cl.Approve(expID)) }

func (s *HTTPShard) Experiment(expID string) (*core.Experiment, error) {
	exp, err := s.cl.Experiment(expID)
	if err != nil {
		var apiErr *core.APIError
		if errors.As(err, &apiErr) && apiErr.Code == core.ErrCodeNotFound {
			return nil, nil
		}
		return nil, remoteErr(err)
	}
	return exp, nil
}

func (s *HTTPShard) ScanPage(f store.Filter, limit int, cursor string) ([]store.Record, string, error) {
	rs, next, err := s.cl.QueryScan(f, limit, cursor)
	return rs, next, remoteErr(err)
}

func (s *HTTPShard) Aggregate(q store.AggQuery) (store.AggReport, error) {
	rep, err := s.cl.QueryAggregate(q.Filter, q.GroupBy)
	return rep, remoteErr(err)
}

func (s *HTTPShard) Health() (core.HealthReport, error) {
	h, err := s.cl.Health()
	return h, remoteErr(err)
}

func (s *HTTPShard) Stats() (core.StatsReport, error) {
	st, err := s.cl.Stats()
	return st, remoteErr(err)
}

// ShipState clones a dead shard's durable state — journal dir (WAL +
// snapshot) and its results-store segments — into a fresh peer
// directory: the "snapshot ship" half of failover. The second half is
// core.Recover on the destination, which replays the WAL through the
// same apply funcs as a crash restart, so leases, the dedup book, and
// queue state arrive exactly as the dead shard acknowledged them —
// exactly-once completion is preserved across the handoff for free.
// srcStoreDir/dstStoreDir default to <dir>/store when empty, matching
// core.Recover's default layout.
func ShipState(srcDir, dstDir, srcStoreDir, dstStoreDir string) error {
	if srcStoreDir == "" {
		srcStoreDir = filepath.Join(srcDir, "store")
	}
	if dstStoreDir == "" {
		dstStoreDir = filepath.Join(dstDir, "store")
	}
	if err := journal.Clone(srcDir, dstDir); err != nil {
		return fmt.Errorf("federation: shipping journal: %w", err)
	}
	if err := store.Clone(srcStoreDir, dstStoreDir); err != nil {
		return fmt.Errorf("federation: shipping store: %w", err)
	}
	return nil
}
