package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// EventKind names one class of scheduled chaos.
type EventKind string

const (
	// EventLinkFlap degrades one probe's uplink for a window: the
	// harness raises that probe's drop probabilities while active.
	EventLinkFlap EventKind = "link_flap"
	// EventPartition fully cuts one probe off from the controller for a
	// window (SetPartitioned on its transport).
	EventPartition EventKind = "partition"
	// EventProbeCycle power-cycles one probe at the event's start round:
	// the harness kills the agent (closing its spool) and restarts it,
	// which must resume the spooled backlog.
	EventProbeCycle EventKind = "probe_cycle"
	// EventControllerCrash hard-crashes the controller at the event's
	// start round and recovers it from its journal.
	EventControllerCrash EventKind = "controller_crash"
	// EventShardKill hard-kills one federation shard (Target is the
	// shard ID) at the event's start round. The coordinator must keep
	// answering — degraded — until the paired restart or a failover.
	EventShardKill EventKind = "shard_kill"
	// EventShardRestart recovers a previously killed shard from its
	// journal at the event's start round.
	EventShardRestart EventKind = "shard_restart"
	// EventInterference turns a country's censorship policy on for a
	// window (Target is the ISO2 country): the harness calls
	// Interference.SetActive so poisoning/resets/throttling apply only
	// while the window holds.
	EventInterference EventKind = "interference"
)

// Event is one scheduled fault: Kind applied to Target (a probe ID, or
// "" for the controller) over rounds [Start, End). Point events
// (probe_cycle, controller_crash) fire once at Start; window events
// (link_flap, partition) hold for the whole interval.
type Event struct {
	Kind   EventKind `json:"kind"`
	Target string    `json:"target,omitempty"`
	Start  int       `json:"start"`
	End    int       `json:"end"`
}

func (e Event) String() string {
	t := e.Target
	if t == "" {
		t = "controller"
	}
	return fmt.Sprintf("%s(%s)@[%d,%d)", e.Kind, t, e.Start, e.End)
}

// Schedule is a deterministic chaos timeline: a set of events over a
// fixed number of rounds. The chaos e2e harness steps round by round,
// asking which events start or are active each round.
type Schedule struct {
	Rounds int
	Events []Event
}

// ActiveAt returns the events of the given kind whose window covers
// round, in generation order.
func (s Schedule) ActiveAt(round int, kind EventKind) []Event {
	var out []Event
	for _, e := range s.Events {
		if e.Kind == kind && e.Start <= round && round < e.End {
			out = append(out, e)
		}
	}
	return out
}

// StartingAt returns the events of the given kind that begin exactly at
// round — how point events (crashes, power cycles) are consumed.
func (s Schedule) StartingAt(round int, kind EventKind) []Event {
	var out []Event
	for _, e := range s.Events {
		if e.Kind == kind && e.Start == round {
			out = append(out, e)
		}
	}
	return out
}

func (s Schedule) String() string {
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return fmt.Sprintf("schedule[%d rounds]: %s", s.Rounds, strings.Join(parts, " "))
}

// ScheduleConfig parameterizes GenerateSchedule.
type ScheduleConfig struct {
	// Rounds is the timeline length.
	Rounds int
	// Probes are the probe IDs chaos may target.
	Probes []string
	// FlapProb / PartitionProb / CycleProb are the per-probe, per-round
	// chances of a link flap, partition, or power cycle starting.
	FlapProb      float64
	PartitionProb float64
	CycleProb     float64
	// MaxWindow bounds the length of flap/partition windows (default 3
	// rounds).
	MaxWindow int
	// ControllerCrashes is exactly how many controller crash/recover
	// events to place, spread over the middle of the timeline so a crash
	// always lands mid-experiment rather than before work starts or
	// after it ends.
	ControllerCrashes int
	// Shards are the federation shard IDs chaos may kill. Empty means
	// no shard events, and — because shard draws happen strictly after
	// every other draw — a config without shards consumes exactly the
	// RNG stream it did before shard chaos existed, so old seeds
	// reproduce byte-identical schedules.
	Shards []string
	// ShardKills is exactly how many shard_kill events to place,
	// round-robin across Shards, each in the middle 60% of the timeline
	// and each paired with a shard_restart 1..MaxWindow rounds later
	// (restarts past the last round are dropped: that shard stays dead,
	// which is what failover drills want).
	ShardKills int
	// InterferenceCountries are the ISO2 countries whose censorship
	// policies chaos may switch on. Empty means no interference events;
	// like shard draws, interference draws happen strictly after every
	// other draw, so configs without them replay established seeds
	// byte-identically.
	InterferenceCountries []string
	// InterferenceWindows is exactly how many interference windows to
	// place, round-robin across InterferenceCountries, each in the middle
	// 60% of the timeline and 1..2*MaxWindow rounds long — wider than
	// flap windows so a poisoning window reliably overlaps task rounds.
	InterferenceWindows int
}

// GenerateSchedule builds a seeded random chaos timeline: same seed and
// config, same schedule. Events are emitted sorted by (Start, Kind,
// Target) so the timeline reads chronologically and iteration order is
// deterministic regardless of generation order.
func GenerateSchedule(seed int64, cfg ScheduleConfig) Schedule {
	rng := rand.New(rand.NewSource(seed))
	maxWin := cfg.MaxWindow
	if maxWin <= 0 {
		maxWin = 3
	}
	var events []Event
	for round := 0; round < cfg.Rounds; round++ {
		for _, p := range cfg.Probes {
			// Fixed draw order per (round, probe) keeps RNG consumption
			// constant, so tweaking one probability does not reshuffle
			// every other event.
			flap := rng.Float64() < cfg.FlapProb
			part := rng.Float64() < cfg.PartitionProb
			cycle := rng.Float64() < cfg.CycleProb
			flapWin := 1 + rng.Intn(maxWin)
			partWin := 1 + rng.Intn(maxWin)
			if flap {
				events = append(events, Event{Kind: EventLinkFlap, Target: p, Start: round, End: min(round+flapWin, cfg.Rounds)})
			}
			if part {
				events = append(events, Event{Kind: EventPartition, Target: p, Start: round, End: min(round+partWin, cfg.Rounds)})
			}
			if cycle {
				events = append(events, Event{Kind: EventProbeCycle, Target: p, Start: round, End: round + 1})
			}
		}
	}
	// Controller crashes are placed, not drawn: a chaos run that asserts
	// crash recovery needs the crash to actually happen. Spread them over
	// the middle 60% of the timeline.
	if cfg.ControllerCrashes > 0 && cfg.Rounds > 1 {
		lo := cfg.Rounds / 5
		hi := cfg.Rounds - cfg.Rounds/5
		if hi <= lo {
			lo, hi = 0, cfg.Rounds
		}
		used := map[int]bool{}
		for i := 0; i < cfg.ControllerCrashes; i++ {
			r := lo + rng.Intn(hi-lo)
			for used[r] {
				r = lo + rng.Intn(hi-lo)
			}
			used[r] = true
			events = append(events, Event{Kind: EventControllerCrash, Start: r, End: r + 1})
		}
	}
	// Shard kills are placed like controller crashes — and drawn last,
	// after every pre-existing draw, so adding shard chaos to a config
	// never reshuffles the flap/partition/cycle/crash stream of an
	// established seed.
	if cfg.ShardKills > 0 && len(cfg.Shards) > 0 && cfg.Rounds > 1 {
		lo := cfg.Rounds / 5
		hi := cfg.Rounds - cfg.Rounds/5
		if hi <= lo {
			lo, hi = 0, cfg.Rounds
		}
		used := map[string]bool{}
		for i := 0; i < cfg.ShardKills; i++ {
			shard := cfg.Shards[i%len(cfg.Shards)]
			r := lo + rng.Intn(hi-lo)
			for used[fmt.Sprintf("%s@%d", shard, r)] {
				r = lo + rng.Intn(hi-lo)
			}
			used[fmt.Sprintf("%s@%d", shard, r)] = true
			events = append(events, Event{Kind: EventShardKill, Target: shard, Start: r, End: r + 1})
			restart := r + 1 + rng.Intn(maxWin)
			if restart < cfg.Rounds {
				events = append(events, Event{Kind: EventShardRestart, Target: shard, Start: restart, End: restart + 1})
			}
		}
	}
	// Interference windows draw after shard draws — the same append-only
	// RNG discipline — and are placed, not probabilistic: a censorship
	// drill needs the window to actually open.
	if cfg.InterferenceWindows > 0 && len(cfg.InterferenceCountries) > 0 && cfg.Rounds > 1 {
		lo := cfg.Rounds / 5
		hi := cfg.Rounds - cfg.Rounds/5
		if hi <= lo {
			lo, hi = 0, cfg.Rounds
		}
		for i := 0; i < cfg.InterferenceWindows; i++ {
			ctry := cfg.InterferenceCountries[i%len(cfg.InterferenceCountries)]
			r := lo + rng.Intn(hi-lo)
			win := 1 + rng.Intn(maxWin*2)
			events = append(events, Event{Kind: EventInterference, Target: ctry, Start: r, End: min(r+win, cfg.Rounds)})
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Target < b.Target
	})
	return Schedule{Rounds: cfg.Rounds, Events: events}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
