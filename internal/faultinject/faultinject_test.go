package faultinject

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func newServer(t *testing.T, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		body, _ := io.ReadAll(r.Body)
		w.Write(append([]byte("echo:"), body...)) //nolint:errcheck
	}))
}

func TestTransparentWhenZeroProbabilities(t *testing.T) {
	var hits atomic.Int64
	srv := newServer(t, &hits)
	defer srv.Close()
	cl := &http.Client{Transport: New(1)}
	resp, err := cl.Post(srv.URL, "text/plain", strings.NewReader("hi"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "echo:hi" || hits.Load() != 1 {
		t.Fatalf("body=%q hits=%d", b, hits.Load())
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	var hits atomic.Int64
	srv := newServer(t, &hits)
	defer srv.Close()
	ft := New(1)
	ft.DupProb = 1
	cl := &http.Client{Transport: ft}
	resp, err := cl.Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "echo:x" {
		t.Fatalf("body = %q", b)
	}
	if hits.Load() != 2 {
		t.Fatalf("server hits = %d, want 2", hits.Load())
	}
	if ft.Stats()["dup"] != 1 {
		t.Fatalf("stats = %v", ft.Stats())
	}
}

func TestDropResponseStillProcesses(t *testing.T) {
	var hits atomic.Int64
	srv := newServer(t, &hits)
	defer srv.Close()
	ft := New(1)
	ft.DropResponseProb = 1
	cl := &http.Client{Transport: ft}
	_, err := cl.Get(srv.URL)
	if err == nil {
		t.Fatal("expected dropped-response error")
	}
	if !strings.Contains(err.Error(), "response dropped") {
		t.Fatalf("err = %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server hits = %d, want 1 (request must be delivered)", hits.Load())
	}
}

func TestDropRequestNeverReachesServer(t *testing.T) {
	var hits atomic.Int64
	srv := newServer(t, &hits)
	defer srv.Close()
	ft := New(1)
	ft.DropRequestProb = 1
	cl := &http.Client{Transport: ft}
	if _, err := cl.Get(srv.URL); err == nil {
		t.Fatal("expected dropped-request error")
	}
	if hits.Load() != 0 {
		t.Fatalf("server hits = %d, want 0", hits.Load())
	}
}

func TestSynthetic503(t *testing.T) {
	var hits atomic.Int64
	srv := newServer(t, &hits)
	defer srv.Close()
	ft := New(1)
	ft.ErrProb = 1
	cl := &http.Client{Transport: ft}
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if hits.Load() != 0 {
		t.Fatalf("server hits = %d, want 0 (503 is synthetic)", hits.Load())
	}
}

func TestPartitionOverridesEverything(t *testing.T) {
	var hits atomic.Int64
	srv := newServer(t, &hits)
	defer srv.Close()
	ft := New(1)
	cl := &http.Client{Transport: ft}
	ft.SetPartitioned(true)
	for i := 0; i < 3; i++ {
		if _, err := cl.Get(srv.URL); err == nil {
			t.Fatal("partitioned request succeeded")
		}
	}
	ft.SetPartitioned(false)
	if _, err := cl.Get(srv.URL); err != nil {
		t.Fatalf("post-partition request failed: %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server hits = %d", hits.Load())
	}
	if ft.Stats()["partitioned"] != 3 {
		t.Fatalf("stats = %v", ft.Stats())
	}
}

func TestDelayUsesSleepHook(t *testing.T) {
	var hits atomic.Int64
	srv := newServer(t, &hits)
	defer srv.Close()
	ft := New(1)
	ft.DelayProb = 1
	ft.Delay = time.Hour // would hang the test if really slept
	var slept atomic.Int64
	ft.Sleep = func(d time.Duration) { slept.Add(int64(d)) }
	cl := &http.Client{Transport: ft}
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if slept.Load() != int64(time.Hour) {
		t.Fatalf("Sleep hook saw %v, want 1h", time.Duration(slept.Load()))
	}
	if ft.Stats()["delay"] != 1 {
		t.Fatalf("stats = %v", ft.Stats())
	}
}

// TestDeterministicSchedule verifies the same seed yields the same
// fault sequence.
func TestDeterministicSchedule(t *testing.T) {
	run := func() []string {
		var hits atomic.Int64
		srv := newServer(t, &hits)
		defer srv.Close()
		ft := New(42)
		ft.DropRequestProb = 0.3
		ft.ErrProb = 0.2
		cl := &http.Client{Transport: ft}
		var seq []string
		for i := 0; i < 20; i++ {
			resp, err := cl.Get(srv.URL)
			switch {
			case err != nil:
				seq = append(seq, "drop")
			case resp.StatusCode == http.StatusServiceUnavailable:
				resp.Body.Close()
				seq = append(seq, "503")
			default:
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				seq = append(seq, "ok")
			}
		}
		return seq
	}
	a, b := run(), run()
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("schedules differ:\n%v\n%v", a, b)
	}
	// And the schedule actually mixes outcomes.
	kinds := map[string]bool{}
	for _, s := range a {
		kinds[s] = true
	}
	if len(kinds) < 2 {
		t.Fatalf("degenerate schedule %v", a)
	}
}
