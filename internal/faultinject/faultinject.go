// Package faultinject provides a deterministic fault-injecting
// http.RoundTripper for exercising the observatory control plane under
// the conditions the paper's probes actually face: flaky cellular
// links, mid-flight crashes, and overloaded controllers.
//
// A Transport wraps an inner RoundTripper and, driven by a seeded RNG,
// drops requests before they reach the server, drops responses after
// the server has processed the request (the nasty at-least-once case),
// duplicates requests, injects synthetic 503s, and adds delays. The
// same seed always yields the same fault schedule, so end-to-end tests
// stay reproducible.
package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"github.com/afrinet/observatory/internal/metrics"
)

// ErrDropped is the error shape returned for injected drops. Callers
// see it as an ordinary transport failure.
type ErrDropped struct {
	// Phase is "request" (never reached the server) or "response"
	// (the server processed the request but the reply was lost).
	Phase string
}

func (e *ErrDropped) Error() string {
	return fmt.Sprintf("faultinject: %s dropped", e.Phase)
}

// Transport is a fault-injecting RoundTripper. Probabilities are
// evaluated in a fixed order per request (partition, drop-request,
// 503, delay, duplicate, drop-response) from a seeded RNG, so a given
// seed produces one deterministic fault schedule when requests are
// issued sequentially.
//
// The zero probabilities make it a transparent proxy; configure the
// fields before issuing traffic.
type Transport struct {
	// Inner performs real round trips; nil means http.DefaultTransport.
	Inner http.RoundTripper

	// DropRequestProb loses the request before the server sees it.
	DropRequestProb float64
	// DropResponseProb delivers the request (the server processes it)
	// but loses the response — the case idempotent completion exists for.
	DropResponseProb float64
	// ErrProb returns a synthetic 503 without contacting the server.
	ErrProb float64
	// DupProb sends the request twice; the server processes both and
	// the caller sees the second response.
	DupProb float64
	// DelayProb sleeps Delay before forwarding.
	DelayProb float64
	// Delay is the injected latency when a delay fault fires.
	Delay time.Duration
	// Sleep is the wait hook for injected delays (nil means
	// time.Sleep); tests replace it so delay faults stop burning
	// wall-clock time.
	Sleep func(time.Duration)

	mu          sync.Mutex
	rng         *rand.Rand
	partitioned bool
	stats       *metrics.CounterSet
}

// New creates a transparent Transport seeded for reproducibility.
func New(seed int64) *Transport {
	return &Transport{
		Inner: http.DefaultTransport,
		rng:   rand.New(rand.NewSource(seed)),
		stats: metrics.NewCounterSet(),
	}
}

// SetPartitioned toggles a full partition: while set, every request
// fails as a request drop regardless of the probabilities.
func (t *Transport) SetPartitioned(on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.partitioned = on
}

// Stats returns the injected-fault counters: "drop_request",
// "drop_response", "err503", "dup", "delay", "partitioned", "passed".
func (t *Transport) Stats() map[string]int64 { return t.stats.Snapshot() }

// faultPlan is one request's drawn schedule.
type faultPlan struct {
	partition, dropReq, err503, delay, dup, dropResp bool
}

func (t *Transport) draw() faultPlan {
	t.mu.Lock()
	defer t.mu.Unlock()
	var p faultPlan
	p.partition = t.partitioned
	// Draw every fault even when an earlier one short-circuits, so the
	// RNG consumption per request is constant and schedules stay
	// aligned across configuration tweaks.
	p.dropReq = t.rng.Float64() < t.DropRequestProb
	p.err503 = t.rng.Float64() < t.ErrProb
	p.delay = t.rng.Float64() < t.DelayProb
	p.dup = t.rng.Float64() < t.DupProb
	p.dropResp = t.rng.Float64() < t.DropResponseProb
	return p
}

// RoundTrip applies the drawn fault schedule to one request.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	plan := t.draw()

	if plan.partition {
		t.stats.Inc("partitioned")
		closeBody(req)
		return nil, &ErrDropped{Phase: "request"}
	}
	if plan.dropReq {
		t.stats.Inc("drop_request")
		closeBody(req)
		return nil, &ErrDropped{Phase: "request"}
	}
	if plan.err503 {
		t.stats.Inc("err503")
		closeBody(req)
		return synthetic503(req), nil
	}
	if plan.delay && t.Delay > 0 {
		t.stats.Inc("delay")
		if t.Sleep != nil {
			t.Sleep(t.Delay)
		} else {
			time.Sleep(t.Delay)
		}
	}

	// Buffer the body so the request can be replayed for duplication.
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}

	if plan.dup {
		t.stats.Inc("dup")
		first, err := inner.RoundTrip(cloneRequest(req, body))
		if err == nil {
			// Discard the first delivery's response.
			io.Copy(io.Discard, first.Body) //nolint:errcheck
			first.Body.Close()
		}
	}

	resp, err := inner.RoundTrip(cloneRequest(req, body))
	if err != nil {
		return nil, err
	}
	if plan.dropResp {
		// The server did the work; the reply evaporates.
		t.stats.Inc("drop_response")
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return nil, &ErrDropped{Phase: "response"}
	}
	t.stats.Inc("passed")
	return resp, nil
}

func cloneRequest(req *http.Request, body []byte) *http.Request {
	cp := req.Clone(req.Context())
	if body != nil {
		cp.Body = io.NopCloser(bytes.NewReader(body))
		cp.ContentLength = int64(len(body))
	} else {
		cp.Body = nil
	}
	return cp
}

func closeBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

func synthetic503(req *http.Request) *http.Response {
	return &http.Response{
		Status:     "503 Service Unavailable",
		StatusCode: http.StatusServiceUnavailable,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     http.Header{"Content-Type": []string{"text/plain"}},
		Body:       io.NopCloser(bytes.NewReader([]byte("faultinject: injected 503"))),
		Request:    req,
	}
}
