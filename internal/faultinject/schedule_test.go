package faultinject

import (
	"reflect"
	"testing"
)

func chaosCfg() ScheduleConfig {
	return ScheduleConfig{
		Rounds:            20,
		Probes:            []string{"p1", "p2", "p3"},
		FlapProb:          0.15,
		PartitionProb:     0.1,
		CycleProb:         0.1,
		ControllerCrashes: 1,
	}
}

func TestGenerateScheduleDeterministic(t *testing.T) {
	a := GenerateSchedule(7, chaosCfg())
	b := GenerateSchedule(7, chaosCfg())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	c := GenerateSchedule(8, chaosCfg())
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateSchedulePlacesExactCrashes(t *testing.T) {
	cfg := chaosCfg()
	cfg.ControllerCrashes = 2
	s := GenerateSchedule(3, cfg)
	crashes := 0
	for _, e := range s.Events {
		if e.Kind != EventControllerCrash {
			continue
		}
		crashes++
		if e.Target != "" {
			t.Fatalf("controller crash has probe target: %v", e)
		}
		// Crashes land mid-experiment: inside the middle 60%.
		if e.Start < cfg.Rounds/5 || e.Start >= cfg.Rounds-cfg.Rounds/5 {
			t.Fatalf("crash at round %d outside middle window", e.Start)
		}
	}
	if crashes != 2 {
		t.Fatalf("placed %d crashes, want exactly 2", crashes)
	}
}

func TestScheduleWindowsAndBounds(t *testing.T) {
	s := GenerateSchedule(11, chaosCfg())
	if len(s.Events) == 0 {
		t.Fatal("degenerate schedule: no events")
	}
	for i, e := range s.Events {
		if e.Start < 0 || e.End > s.Rounds || e.Start >= e.End {
			t.Fatalf("event %v out of bounds", e)
		}
		if e.Kind == EventProbeCycle && e.End != e.Start+1 {
			t.Fatalf("point event with a window: %v", e)
		}
		if i > 0 && s.Events[i-1].Start > e.Start {
			t.Fatalf("events not sorted by start: %v before %v", s.Events[i-1], e)
		}
	}
}

func TestActiveAtAndStartingAt(t *testing.T) {
	s := Schedule{Rounds: 10, Events: []Event{
		{Kind: EventPartition, Target: "p1", Start: 2, End: 5},
		{Kind: EventLinkFlap, Target: "p2", Start: 3, End: 4},
		{Kind: EventProbeCycle, Target: "p1", Start: 4, End: 5},
	}}
	if got := s.ActiveAt(2, EventPartition); len(got) != 1 || got[0].Target != "p1" {
		t.Fatalf("ActiveAt(2, partition) = %v", got)
	}
	if got := s.ActiveAt(5, EventPartition); got != nil {
		t.Fatalf("window end is exclusive, got %v", got)
	}
	if got := s.ActiveAt(3, EventLinkFlap); len(got) != 1 {
		t.Fatalf("ActiveAt(3, flap) = %v", got)
	}
	if got := s.StartingAt(4, EventProbeCycle); len(got) != 1 || got[0].Target != "p1" {
		t.Fatalf("StartingAt(4, cycle) = %v", got)
	}
	if got := s.StartingAt(3, EventProbeCycle); got != nil {
		t.Fatalf("StartingAt(3, cycle) = %v, want none", got)
	}
}
