package faultinject

import (
	"reflect"
	"testing"
)

func chaosCfg() ScheduleConfig {
	return ScheduleConfig{
		Rounds:            20,
		Probes:            []string{"p1", "p2", "p3"},
		FlapProb:          0.15,
		PartitionProb:     0.1,
		CycleProb:         0.1,
		ControllerCrashes: 1,
	}
}

func TestGenerateScheduleDeterministic(t *testing.T) {
	a := GenerateSchedule(7, chaosCfg())
	b := GenerateSchedule(7, chaosCfg())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	c := GenerateSchedule(8, chaosCfg())
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateSchedulePlacesExactCrashes(t *testing.T) {
	cfg := chaosCfg()
	cfg.ControllerCrashes = 2
	s := GenerateSchedule(3, cfg)
	crashes := 0
	for _, e := range s.Events {
		if e.Kind != EventControllerCrash {
			continue
		}
		crashes++
		if e.Target != "" {
			t.Fatalf("controller crash has probe target: %v", e)
		}
		// Crashes land mid-experiment: inside the middle 60%.
		if e.Start < cfg.Rounds/5 || e.Start >= cfg.Rounds-cfg.Rounds/5 {
			t.Fatalf("crash at round %d outside middle window", e.Start)
		}
	}
	if crashes != 2 {
		t.Fatalf("placed %d crashes, want exactly 2", crashes)
	}
}

func TestScheduleWindowsAndBounds(t *testing.T) {
	s := GenerateSchedule(11, chaosCfg())
	if len(s.Events) == 0 {
		t.Fatal("degenerate schedule: no events")
	}
	for i, e := range s.Events {
		if e.Start < 0 || e.End > s.Rounds || e.Start >= e.End {
			t.Fatalf("event %v out of bounds", e)
		}
		if e.Kind == EventProbeCycle && e.End != e.Start+1 {
			t.Fatalf("point event with a window: %v", e)
		}
		if i > 0 && s.Events[i-1].Start > e.Start {
			t.Fatalf("events not sorted by start: %v before %v", s.Events[i-1], e)
		}
	}
}

func TestShardEventsDeterministicAndPlaced(t *testing.T) {
	cfg := chaosCfg()
	cfg.Shards = []string{"shard-0", "shard-1"}
	cfg.ShardKills = 3
	a := GenerateSchedule(7, cfg)
	b := GenerateSchedule(7, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different shard schedules:\n%v\n%v", a, b)
	}

	kills, restarts := 0, 0
	killRound := map[string]int{}
	for _, e := range a.Events {
		switch e.Kind {
		case EventShardKill:
			kills++
			killRound[e.Target+"@"] = e.Start
			if e.Target != "shard-0" && e.Target != "shard-1" {
				t.Fatalf("shard kill targets unknown shard: %v", e)
			}
			if e.End != e.Start+1 {
				t.Fatalf("shard kill is a point event, got window: %v", e)
			}
			// Kills land mid-experiment: inside the middle 60%.
			if e.Start < cfg.Rounds/5 || e.Start >= cfg.Rounds-cfg.Rounds/5 {
				t.Fatalf("shard kill at round %d outside middle window", e.Start)
			}
		case EventShardRestart:
			restarts++
			if e.Start >= cfg.Rounds || e.End != e.Start+1 {
				t.Fatalf("shard restart out of bounds: %v", e)
			}
		}
	}
	if kills != 3 {
		t.Fatalf("placed %d shard kills, want exactly 3", kills)
	}
	if restarts > kills {
		t.Fatalf("%d restarts for %d kills", restarts, kills)
	}
	// Round-robin targeting: 3 kills over 2 shards hits shard-0 twice.
	perShard := map[string]int{}
	for _, e := range a.Events {
		if e.Kind == EventShardKill {
			perShard[e.Target]++
		}
	}
	if perShard["shard-0"] != 2 || perShard["shard-1"] != 1 {
		t.Fatalf("kills not round-robin: %v", perShard)
	}
}

func TestShardConfigPreservesExistingSeeds(t *testing.T) {
	// Shard draws happen after every pre-existing draw, so turning shard
	// chaos on must leave the flap/partition/cycle/crash events of an
	// established seed byte-identical.
	base := GenerateSchedule(42, chaosCfg())
	cfg := chaosCfg()
	cfg.Shards = []string{"shard-0", "shard-1", "shard-2"}
	cfg.ShardKills = 2
	withShards := GenerateSchedule(42, cfg)

	strip := func(s Schedule) []Event {
		var out []Event
		for _, e := range s.Events {
			if e.Kind != EventShardKill && e.Kind != EventShardRestart {
				out = append(out, e)
			}
		}
		return out
	}
	if !reflect.DeepEqual(base.Events, strip(withShards)) {
		t.Fatalf("shard config reshuffled pre-existing events:\nbase: %v\nwith: %v", base.Events, strip(withShards))
	}
}

func TestInterferenceEventsDeterministicAndPlaced(t *testing.T) {
	cfg := chaosCfg()
	cfg.InterferenceCountries = []string{"RW", "ET"}
	cfg.InterferenceWindows = 3
	a := GenerateSchedule(7, cfg)
	b := GenerateSchedule(7, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different interference schedules:\n%v\n%v", a, b)
	}
	perCountry := map[string]int{}
	for _, e := range a.Events {
		if e.Kind != EventInterference {
			continue
		}
		perCountry[e.Target]++
		if e.Start < cfg.Rounds/5 {
			t.Fatalf("interference window starts before the middle 60%%: %v", e)
		}
		if e.Start >= e.End || e.End > cfg.Rounds {
			t.Fatalf("interference window out of bounds: %v", e)
		}
	}
	// Round-robin targeting: 3 windows over 2 countries hits RW twice.
	if perCountry["RW"] != 2 || perCountry["ET"] != 1 {
		t.Fatalf("windows not round-robin: %v", perCountry)
	}
}

func TestInterferenceConfigPreservesExistingSeeds(t *testing.T) {
	// Interference draws happen after every pre-existing draw — including
	// shard draws — so turning censorship windows on must leave an
	// established seed's other events byte-identical.
	base := chaosCfg()
	base.Shards = []string{"shard-0"}
	base.ShardKills = 1
	without := GenerateSchedule(42, base)

	cfg := base
	cfg.InterferenceCountries = []string{"RW"}
	cfg.InterferenceWindows = 2
	with := GenerateSchedule(42, cfg)

	var stripped []Event
	for _, e := range with.Events {
		if e.Kind != EventInterference {
			stripped = append(stripped, e)
		}
	}
	if !reflect.DeepEqual(without.Events, stripped) {
		t.Fatalf("interference config reshuffled pre-existing events:\nbase: %v\nwith: %v", without.Events, stripped)
	}
}

func TestActiveAtAndStartingAt(t *testing.T) {
	s := Schedule{Rounds: 10, Events: []Event{
		{Kind: EventPartition, Target: "p1", Start: 2, End: 5},
		{Kind: EventLinkFlap, Target: "p2", Start: 3, End: 4},
		{Kind: EventProbeCycle, Target: "p1", Start: 4, End: 5},
	}}
	if got := s.ActiveAt(2, EventPartition); len(got) != 1 || got[0].Target != "p1" {
		t.Fatalf("ActiveAt(2, partition) = %v", got)
	}
	if got := s.ActiveAt(5, EventPartition); got != nil {
		t.Fatalf("window end is exclusive, got %v", got)
	}
	if got := s.ActiveAt(3, EventLinkFlap); len(got) != 1 {
		t.Fatalf("ActiveAt(3, flap) = %v", got)
	}
	if got := s.StartingAt(4, EventProbeCycle); len(got) != 1 || got[0].Target != "p1" {
		t.Fatalf("StartingAt(4, cycle) = %v", got)
	}
	if got := s.StartingAt(3, EventProbeCycle); got != nil {
		t.Fatalf("StartingAt(3, cycle) = %v, want none", got)
	}
}
