// Package netx provides the IPv4 building blocks the simulator and the
// measurement tools share: 32-bit addresses, CIDR prefixes, a
// longest-prefix-match trie, and sequential address allocation.
//
// The simulator keeps addresses as uint32 throughout; conversion to
// net/netip types happens only at the edges (wire formats, logs).
package netx

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// ParseAddr parses dotted-quad notation.
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netx: bad address %q", s)
	}
	var a uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("netx: bad address %q", s)
		}
		a = a<<8 | uint32(n)
	}
	return Addr(a), nil
}

// MustParseAddr is ParseAddr for literals; it panics on error.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String formats the address as dotted-quad.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Prefix is an IPv4 CIDR prefix. The base address is kept masked.
type Prefix struct {
	base Addr
	bits int
}

// MakePrefix returns the prefix containing addr with the given length,
// masking host bits.
func MakePrefix(addr Addr, bits int) Prefix {
	if bits < 0 || bits > 32 {
		panic(fmt.Sprintf("netx: bad prefix length %d", bits))
	}
	return Prefix{base: addr & maskFor(bits), bits: bits}
}

// ParsePrefix parses "a.b.c.d/len".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netx: bad prefix %q", s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netx: bad prefix %q", s)
	}
	return MakePrefix(addr, bits), nil
}

// MustParsePrefix is ParsePrefix for literals; it panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func maskFor(bits int) Addr {
	if bits == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - bits))
}

// Base returns the (masked) network address.
func (p Prefix) Base() Addr { return p.base }

// Bits returns the prefix length.
func (p Prefix) Bits() int { return p.bits }

// Size returns the number of addresses covered by the prefix.
func (p Prefix) Size() uint64 { return 1 << (32 - uint(p.bits)) }

// Contains reports whether addr is inside the prefix.
func (p Prefix) Contains(addr Addr) bool { return addr&maskFor(p.bits) == p.base }

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.bits <= q.bits {
		return p.Contains(q.base)
	}
	return q.Contains(p.base)
}

// Nth returns the i-th address of the prefix (0 = network address).
// It panics when i is out of range, which indicates a bug in the caller's
// allocation arithmetic.
func (p Prefix) Nth(i uint64) Addr {
	if i >= p.Size() {
		panic(fmt.Sprintf("netx: address index %d out of range for %s", i, p))
	}
	return p.base + Addr(i)
}

// String formats the prefix in CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.base, p.bits) }

// Subnets carves the prefix into consecutive subnets of length newBits.
// It returns at most limit subnets (limit <= 0 means all).
func (p Prefix) Subnets(newBits, limit int) []Prefix {
	if newBits < p.bits || newBits > 32 {
		panic(fmt.Sprintf("netx: cannot subnet %s into /%d", p, newBits))
	}
	n := 1 << uint(newBits-p.bits)
	if limit > 0 && limit < n {
		n = limit
	}
	step := Addr(1) << (32 - uint(newBits))
	out := make([]Prefix, n)
	for i := 0; i < n; i++ {
		out[i] = Prefix{base: p.base + Addr(i)*step, bits: newBits}
	}
	return out
}
