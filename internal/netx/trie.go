package netx

// Trie is a binary radix trie keyed by IPv4 prefixes, supporting
// longest-prefix-match lookup. The zero value is an empty trie ready to
// use. Values are opaque; the simulator stores ASNs and the measurement
// tools store classification tags.
//
// Trie is not safe for concurrent mutation; concurrent lookups after all
// inserts are complete are safe because lookups never write.
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// Insert associates val with the prefix, replacing any previous value at
// exactly that prefix.
func (t *Trie[V]) Insert(p Prefix, val V) {
	if t.root == nil {
		t.root = &trieNode[V]{}
	}
	n := t.root
	for i := 0; i < p.Bits(); i++ {
		b := (p.Base() >> (31 - uint(i))) & 1
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.size++
	}
	n.val, n.set = val, true
}

// Lookup returns the value of the longest prefix containing addr.
func (t *Trie[V]) Lookup(addr Addr) (V, bool) {
	var best V
	found := false
	n := t.root
	for i := 0; n != nil; i++ {
		if n.set {
			best, found = n.val, true
		}
		if i == 32 {
			break
		}
		b := (addr >> (31 - uint(i))) & 1
		n = n.child[b]
	}
	return best, found
}

// LookupPrefix returns the value stored at exactly the given prefix.
func (t *Trie[V]) LookupPrefix(p Prefix) (V, bool) {
	var zero V
	n := t.root
	for i := 0; i < p.Bits(); i++ {
		if n == nil {
			return zero, false
		}
		b := (p.Base() >> (31 - uint(i))) & 1
		n = n.child[b]
	}
	if n == nil || !n.set {
		return zero, false
	}
	return n.val, true
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

// Walk visits every stored prefix in address order, calling fn; fn
// returning false stops the walk.
func (t *Trie[V]) Walk(fn func(Prefix, V) bool) {
	var walk func(n *trieNode[V], base Addr, bits int) bool
	walk = func(n *trieNode[V], base Addr, bits int) bool {
		if n == nil {
			return true
		}
		if n.set && !fn(MakePrefix(base, bits), n.val) {
			return false
		}
		if !walk(n.child[0], base, bits+1) {
			return false
		}
		return walk(n.child[1], base|(1<<(31-uint(bits))), bits+1)
	}
	walk(t.root, 0, 0)
}
