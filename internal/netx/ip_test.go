package netx

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xFFFFFFFF, true},
		{"10.1.2.3", 0x0A010203, true},
		{"196.60.0.1", Addr(196)<<24 | Addr(60)<<16 | 1, true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.1.1.1", 0, false},
		{"-1.2.3.4", 0, false},
		{"a.b.c.d", 0, false},
		{"01.2.3.4", 0, false}, // leading zero rejected
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAddrRoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		addr := Addr(a)
		back, err := ParseAddr(addr.String())
		return err == nil && back == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMustParseAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParseAddr("not-an-addr")
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	if p.Bits() != 8 || p.Base() != MustParseAddr("10.0.0.0") {
		t.Fatalf("bad prefix %v", p)
	}
	if p.String() != "10.0.0.0/8" {
		t.Fatalf("String = %q", p.String())
	}
	// Host bits are masked.
	q := MustParsePrefix("10.1.2.3/8")
	if q.Base() != p.Base() {
		t.Fatalf("host bits not masked: %v", q)
	}
	for _, bad := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "x/8"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) should fail", bad)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("196.60.0.0/14")
	if !p.Contains(MustParseAddr("196.60.0.1")) || !p.Contains(MustParseAddr("196.63.255.255")) {
		t.Fatal("Contains misses in-range addresses")
	}
	if p.Contains(MustParseAddr("196.64.0.0")) || p.Contains(MustParseAddr("196.59.255.255")) {
		t.Fatal("Contains accepts out-of-range addresses")
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(MustParseAddr("255.1.2.3")) {
		t.Fatal("/0 should contain everything")
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.5.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("nested prefixes should overlap")
	}
	if a.Overlaps(c) {
		t.Fatal("disjoint prefixes should not overlap")
	}
	if !a.Overlaps(a) {
		t.Fatal("prefix should overlap itself")
	}
}

func TestPrefixSizeAndNth(t *testing.T) {
	p := MustParsePrefix("192.168.1.0/24")
	if p.Size() != 256 {
		t.Fatalf("/24 size = %d", p.Size())
	}
	if p.Nth(0) != MustParseAddr("192.168.1.0") || p.Nth(255) != MustParseAddr("192.168.1.255") {
		t.Fatal("Nth endpoints wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Nth out of range should panic")
		}
	}()
	p.Nth(256)
}

func TestSubnets(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/22")
	subs := p.Subnets(24, 0)
	if len(subs) != 4 {
		t.Fatalf("got %d /24s, want 4", len(subs))
	}
	want := []string{"10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24"}
	for i, s := range subs {
		if s.String() != want[i] {
			t.Errorf("subnet %d = %s, want %s", i, s, want[i])
		}
	}
	if got := p.Subnets(24, 2); len(got) != 2 {
		t.Fatalf("limit ignored: %d", len(got))
	}
	// Same-length subnetting returns the prefix itself.
	if got := p.Subnets(22, 0); len(got) != 1 || got[0] != p {
		t.Fatalf("self subnetting = %v", got)
	}
}

func TestSubnetsPanicsOnWidening(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParsePrefix("10.0.0.0/24").Subnets(8, 0)
}

func TestSubnetsDisjointProperty(t *testing.T) {
	f := func(base uint32, extraBits uint8) bool {
		bits := 8 + int(extraBits%12) // /8../19
		newBits := bits + 1 + int(extraBits%3)
		p := MakePrefix(Addr(base), bits)
		subs := p.Subnets(newBits, 16)
		for i := range subs {
			if !p.Contains(subs[i].Base()) {
				return false
			}
			for j := i + 1; j < len(subs); j++ {
				if subs[i].Overlaps(subs[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
