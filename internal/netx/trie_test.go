package netx

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrieBasicLPM(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustParsePrefix("10.0.0.0/8"), "eight")
	tr.Insert(MustParsePrefix("10.1.0.0/16"), "sixteen")
	tr.Insert(MustParsePrefix("10.1.2.0/24"), "twentyfour")

	cases := []struct {
		addr string
		want string
		ok   bool
	}{
		{"10.1.2.3", "twentyfour", true},
		{"10.1.3.1", "sixteen", true},
		{"10.2.0.1", "eight", true},
		{"11.0.0.1", "", false},
	}
	for _, c := range cases {
		got, ok := tr.Lookup(MustParseAddr(c.addr))
		if ok != c.ok || got != c.want {
			t.Errorf("Lookup(%s) = %q,%v want %q,%v", c.addr, got, ok, c.want, c.ok)
		}
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("0.0.0.0/0"), 42)
	if v, ok := tr.Lookup(MustParseAddr("200.200.200.200")); !ok || v != 42 {
		t.Fatal("default route not matched")
	}
}

func TestTrieReplace(t *testing.T) {
	var tr Trie[int]
	p := MustParsePrefix("10.0.0.0/8")
	tr.Insert(p, 1)
	tr.Insert(p, 2)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after replace", tr.Len())
	}
	if v, _ := tr.Lookup(MustParseAddr("10.0.0.1")); v != 2 {
		t.Fatalf("value = %d, want 2", v)
	}
}

func TestTrieLookupPrefix(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 1)
	if v, ok := tr.LookupPrefix(MustParsePrefix("10.0.0.0/8")); !ok || v != 1 {
		t.Fatal("exact prefix not found")
	}
	if _, ok := tr.LookupPrefix(MustParsePrefix("10.0.0.0/9")); ok {
		t.Fatal("longer prefix should not match exactly")
	}
	if _, ok := tr.LookupPrefix(MustParsePrefix("11.0.0.0/8")); ok {
		t.Fatal("absent prefix matched")
	}
}

func TestTrieWalkOrder(t *testing.T) {
	var tr Trie[int]
	ps := []string{"10.0.0.0/8", "9.0.0.0/8", "10.128.0.0/9", "11.0.0.0/16"}
	for i, s := range ps {
		tr.Insert(MustParsePrefix(s), i)
	}
	var got []Addr
	tr.Walk(func(p Prefix, _ int) bool {
		got = append(got, p.Base())
		return true
	})
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("walk out of order: %v", got)
		}
	}
	if len(got) != len(ps) {
		t.Fatalf("walk visited %d, want %d", len(got), len(ps))
	}
	// Early stop.
	count := 0
	tr.Walk(func(Prefix, int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
}

// TestTrieMatchesBruteForce cross-checks longest-prefix match against a
// linear scan on random prefix sets.
func TestTrieMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	type entry struct {
		p Prefix
		v int
	}
	for round := 0; round < 20; round++ {
		var tr Trie[int]
		var entries []entry
		seen := map[Prefix]bool{}
		for i := 0; i < 50; i++ {
			p := MakePrefix(Addr(rng.Uint32()), 4+rng.Intn(25))
			if seen[p] {
				continue
			}
			seen[p] = true
			tr.Insert(p, i)
			entries = append(entries, entry{p, i})
		}
		for probe := 0; probe < 100; probe++ {
			a := Addr(rng.Uint32())
			bestBits, bestV, found := -1, 0, false
			for _, e := range entries {
				if e.p.Contains(a) && e.p.Bits() > bestBits {
					bestBits, bestV, found = e.p.Bits(), e.v, true
				}
			}
			gotV, gotOK := tr.Lookup(a)
			if gotOK != found || (found && gotV != bestV) {
				t.Fatalf("mismatch for %s: trie=%d,%v brute=%d,%v", a, gotV, gotOK, bestV, found)
			}
		}
	}
}

func TestTrieQuickInsertLookup(t *testing.T) {
	f := func(base uint32, bitsRaw uint8) bool {
		bits := int(bitsRaw % 33)
		var tr Trie[uint32]
		p := MakePrefix(Addr(base), bits)
		tr.Insert(p, base)
		v, ok := tr.Lookup(p.Base())
		return ok && v == base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
