package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("beta-long-name", 12.345)
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns aligned: every "value" column starts at the same offset.
	hdrIdx := strings.Index(lines[1], "value")
	if hdrIdx < 0 {
		t.Fatal("header missing")
	}
	if !strings.Contains(lines[4], "12.3") {
		t.Fatalf("float not formatted: %q", lines[4])
	}
	if got := strings.Index(lines[3], "1"); got != hdrIdx {
		t.Fatalf("column misaligned: %d vs %d\n%s", got, hdrIdx, out)
	}
}

func TestTableAlignsUTF8Labels(t *testing.T) {
	// Accented country names are multi-byte but single-cell; padding by
	// byte length used to push every later column out of alignment on
	// the rows that contain them.
	tb := NewTable("Pays", "name", "value")
	tb.AddRow("Côte d'Ivoire", 1)
	tb.AddRow("Sao Tome 1234", 2) // same display width, pure ASCII
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	hdrIdx := strings.Index(lines[1], "value")
	for _, row := range lines[3:] {
		runes := []rune(row)
		got := -1
		for i := len(runes) - 1; i >= 0; i-- {
			if runes[i] != ' ' {
				got = i
				break
			}
		}
		if got != hdrIdx {
			t.Fatalf("value column at rune offset %d, want %d:\n%s", got, hdrIdx, out)
		}
	}
}

func TestBarChartAlignsUTF8Labels(t *testing.T) {
	var b strings.Builder
	BarChart(&b, "", []string{"Côte d'Ivoire", "Kenya edition"}, []float64{1, 1}, 1)
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	a := []rune(lines[0])
	c := []rune(lines[1])
	ai, ci := -1, -1
	for i, r := range a {
		if r == '#' {
			ai = i
			break
		}
	}
	for i, r := range c {
		if r == '#' {
			ci = i
			break
		}
	}
	if ai != ci {
		t.Fatalf("bars start at rune offsets %d vs %d:\n%s", ai, ci, b.String())
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	if strings.Contains(tb.String(), "==") {
		t.Fatal("empty title should not render a banner")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b,
		Series{Name: "s1", Points: [][2]float64{{1, 2}, {3, 4}}},
		Series{Name: "s2", Points: [][2]float64{{5, 6}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	want := "series,x,y\ns1,1,2\ns1,3,4\ns2,5,6\n"
	if b.String() != want {
		t.Fatalf("csv = %q", b.String())
	}
}

func TestBarChart(t *testing.T) {
	var b strings.Builder
	BarChart(&b, "Bars", []string{"aa", "b"}, []float64{1.0, 0.5}, 1.0)
	out := b.String()
	if !strings.Contains(out, "== Bars ==") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	full := strings.Count(lines[1], "#")
	half := strings.Count(lines[2], "#")
	if full != 40 || half != 20 {
		t.Fatalf("bar widths %d/%d", full, half)
	}
}

func TestBarChartAutoScale(t *testing.T) {
	var b strings.Builder
	BarChart(&b, "", []string{"x"}, []float64{5}, 0)
	if strings.Count(b.String(), "#") != 40 {
		t.Fatal("auto max should make the largest bar full width")
	}
	// All-zero values must not divide by zero.
	var b2 strings.Builder
	BarChart(&b2, "", []string{"x"}, []float64{0}, 0)
}
