// Package report renders experiment results as aligned ASCII tables and
// CSV series, the formats cmd/repro uses to regenerate the paper's
// tables and figures.
package report

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends one row; values are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = width(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && width(c) > widths[i] {
				widths[i] = width(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// width is a string's display width in cells. Column math must count
// runes, not bytes: "Côte d'Ivoire" is 14 cells but 15 bytes, and
// byte-based padding skews every column after a non-ASCII label.
func width(s string) int {
	return utf8.RuneCountInString(s)
}

func pad(s string, w int) string {
	if width(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-width(s))
}

// Series is a named sequence of (x, y) points — one figure line.
type Series struct {
	Name   string
	Points [][2]float64
}

// WriteCSV writes one or more series as long-format CSV
// (series,x,y per line) for external plotting.
func WriteCSV(w io.Writer, series ...Series) error {
	if _, err := fmt.Fprintln(w, "series,x,y"); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", s.Name, p[0], p[1]); err != nil {
				return err
			}
		}
	}
	return nil
}

// BarChart renders a quick horizontal ASCII bar chart of labeled values
// in [0,1] (fractions) or arbitrary positive scales.
func BarChart(w io.Writer, title string, labels []string, values []float64, maxVal float64) {
	if title != "" {
		fmt.Fprintf(w, "== %s ==\n", title)
	}
	wide := 0
	for _, l := range labels {
		if width(l) > wide {
			wide = width(l)
		}
	}
	if maxVal <= 0 {
		for _, v := range values {
			if v > maxVal {
				maxVal = v
			}
		}
		if maxVal == 0 {
			maxVal = 1
		}
	}
	const barWidth = 40
	for i, l := range labels {
		v := values[i]
		n := int(v / maxVal * barWidth)
		if n < 0 {
			n = 0
		}
		if n > barWidth {
			n = barWidth
		}
		fmt.Fprintf(w, "%s  %s %.1f\n", pad(l, wide), strings.Repeat("#", n), v)
	}
}
