package bgp

import (
	"testing"

	"github.com/afrinet/observatory/internal/netx"
	"github.com/afrinet/observatory/internal/topology"
)

// mkAS builds a minimal AS for hand-made graphs.
func mkAS(asn topology.ASN, tier topology.Tier) *topology.AS {
	return &topology.AS{
		ASN: asn, Name: "test", Country: "DE", Tier: tier,
		Type:     topology.ASTransit,
		Prefixes: []netx.Prefix{netx.MakePrefix(netx.Addr(uint32(asn))<<16, 20)},
	}
}

// c2p makes a customer(a)->provider(b) link; p2p a peering.
func c2p(a, b topology.ASN) topology.Link {
	return topology.Link{A: a, B: b, Kind: topology.CustomerProvider}
}
func p2p(a, b topology.ASN) topology.Link {
	return topology.Link{A: a, B: b, Kind: topology.PeerPeer}
}

// The canonical Gao-Rexford example:
//
//	      1 ---- 2        (tier-1 peering)
//	     /  \     \
//	   10    11    12     (customers of the tier-1s)
//	  /  \         |
//	100  101      120     (stubs)
//
// plus a peering between 10 and 11.
func gaoRexfordWorld() *topology.Topology {
	ases := []*topology.AS{
		mkAS(1, topology.Tier1), mkAS(2, topology.Tier1),
		mkAS(10, topology.Tier2), mkAS(11, topology.Tier2), mkAS(12, topology.Tier2),
		mkAS(100, topology.TierStub), mkAS(101, topology.TierStub), mkAS(120, topology.TierStub),
	}
	links := []topology.Link{
		p2p(1, 2),
		c2p(10, 1), c2p(11, 1), c2p(12, 2),
		p2p(10, 11),
		c2p(100, 10), c2p(101, 10), c2p(120, 12),
	}
	return topology.NewManual(ases, links, nil)
}

func pathASNs(t *testing.T, r *Router, src, dst topology.ASN) []topology.ASN {
	t.Helper()
	p, ok := r.Path(src, dst)
	if !ok {
		t.Fatalf("no path %d->%d", src, dst)
	}
	return p.ASNs()
}

func eq(a, b []topology.ASN) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCustomerRoutePreferred(t *testing.T) {
	r := New(gaoRexfordWorld())
	// 10 reaches 100 directly through its customer, never via 1.
	if got := pathASNs(t, r, 10, 100); !eq(got, []topology.ASN{10, 100}) {
		t.Fatalf("10->100 = %v", got)
	}
	// 1 reaches 100 through its customer 10.
	if got := pathASNs(t, r, 1, 100); !eq(got, []topology.ASN{1, 10, 100}) {
		t.Fatalf("1->100 = %v", got)
	}
}

func TestPeerPreferredOverProvider(t *testing.T) {
	r := New(gaoRexfordWorld())
	// 11 -> 100: the peer route 11-10-100 beats the provider route
	// 11-1-10-100.
	if got := pathASNs(t, r, 11, 100); !eq(got, []topology.ASN{11, 10, 100}) {
		t.Fatalf("11->100 = %v", got)
	}
}

func TestProviderRouteWhenNeeded(t *testing.T) {
	r := New(gaoRexfordWorld())
	// 100 -> 120 must climb to the tier-1 mesh: 100-10-1-2-12-120.
	if got := pathASNs(t, r, 100, 120); !eq(got, []topology.ASN{100, 10, 1, 2, 12, 120}) {
		t.Fatalf("100->120 = %v", got)
	}
}

func TestValleyFreeNoPeerTransit(t *testing.T) {
	r := New(gaoRexfordWorld())
	// 101 -> 11 must NOT use the 10-11 peering as transit for 10's
	// customer... actually customer 101 may ride 10 then peer 11: that
	// IS valley-free (customer->peer). Verify it is used.
	if got := pathASNs(t, r, 101, 11); !eq(got, []topology.ASN{101, 10, 11}) {
		t.Fatalf("101->11 = %v", got)
	}
	// But 11 -> 12 must not ride the peering then climb (peer->provider
	// is a valley): expect 11-1-2-12.
	if got := pathASNs(t, r, 11, 12); !eq(got, []topology.ASN{11, 1, 2, 12}) {
		t.Fatalf("11->12 = %v", got)
	}
}

func TestSelfPath(t *testing.T) {
	r := New(gaoRexfordWorld())
	if got := pathASNs(t, r, 10, 10); !eq(got, []topology.ASN{10}) {
		t.Fatalf("self path = %v", got)
	}
}

func TestLinkFailureFailover(t *testing.T) {
	world := gaoRexfordWorld()
	r := New(world)
	// Find the 100->10 link.
	var linkID topology.LinkID
	found := false
	for i := range world.Links {
		l := &world.Links[i]
		if l.A == 100 && l.B == 10 {
			linkID = l.ID
			found = true
		}
	}
	if !found {
		t.Fatal("missing 100->10 link")
	}
	if !r.Reachable(1, 100) {
		t.Fatal("100 unreachable before failure")
	}
	r.SetLinkDown(linkID, true)
	if r.Reachable(1, 100) {
		t.Fatal("100 should be cut off (single-homed)")
	}
	r.SetLinkDown(linkID, false)
	if !r.Reachable(1, 100) {
		t.Fatal("100 should be back after restore")
	}
	r.SetLinkDown(linkID, true)
	r.ResetFailures()
	if !r.Reachable(1, 100) || len(r.DownLinks()) != 0 {
		t.Fatal("ResetFailures did not restore")
	}
}

// relOf classifies the relationship of the step a->b.
func relOf(topo *topology.Topology, l *topology.Link, from topology.ASN) string {
	if l.Kind == topology.PeerPeer {
		return "peer"
	}
	if l.A == from {
		return "up" // customer -> provider
	}
	return "down" // provider -> customer
}

// TestValleyFreeProperty checks every sampled path in the generated
// world follows the up*-peer?-down* pattern.
func TestValleyFreeProperty(t *testing.T) {
	topo := topology.Generate(topology.DefaultParams())
	r := New(topo)
	asns := topo.ASNs()
	checked := 0
	for i := 0; i < len(asns); i += 17 {
		for j := 5; j < len(asns); j += 31 {
			src, dst := asns[i], asns[j]
			if src == dst {
				continue
			}
			p, ok := r.Path(src, dst)
			if !ok {
				continue
			}
			phase := 0 // 0=climbing, 1=peered, 2=descending
			at := src
			for _, h := range p.Hops[1:] {
				l := topo.Link(h.Link)
				switch relOf(topo, l, at) {
				case "up":
					if phase != 0 {
						t.Fatalf("valley in path %v: up after phase %d", p.ASNs(), phase)
					}
				case "peer":
					if phase >= 1 {
						t.Fatalf("two peer steps in path %v", p.ASNs())
					}
					phase = 1
				case "down":
					phase = 2
				}
				at = h.ASN
			}
			checked++
		}
	}
	if checked < 100 {
		t.Fatalf("only %d paths checked", checked)
	}
}

func TestFullReachabilityGenerated(t *testing.T) {
	topo := topology.Generate(topology.DefaultParams())
	r := New(topo)
	asns := topo.ASNs()
	dst := asns[0]
	tree := r.Tree(dst)
	// Every AS except IXP route servers must reach every other.
	for _, src := range asns {
		as := topo.ASes[src]
		if as.Type == topology.ASIXPRouteServer || src == dst {
			continue
		}
		if !tree.Reachable(src) {
			t.Fatalf("AS%d cannot reach AS%d", src, dst)
		}
	}
}

func TestTreeCaching(t *testing.T) {
	topo := topology.Generate(topology.DefaultParams())
	r := New(topo)
	a := r.Tree(topo.ASNs()[10])
	b := r.Tree(topo.ASNs()[10])
	if a != b {
		t.Fatal("tree not cached")
	}
	r.SetLinkDown(0, true)
	c := r.Tree(topo.ASNs()[10])
	if a == c {
		t.Fatal("cache not invalidated by failure")
	}
}

func TestRoutedTable(t *testing.T) {
	topo := topology.Generate(topology.DefaultParams())
	rt := BuildRoutedTable(topo)
	if rt.Len() == 0 {
		t.Fatal("empty routed table")
	}
	// Every non-IXP AS prefix resolves to its origin.
	for _, asn := range topo.ASNs() {
		as := topo.ASes[asn]
		if as.Type == topology.ASIXPRouteServer {
			// LANs must NOT be routed.
			for _, p := range as.Prefixes {
				if origin, ok := rt.Origin(p.Nth(5)); ok {
					t.Fatalf("IXP LAN %v routed (origin %d)", p, origin)
				}
			}
			continue
		}
		for _, p := range as.Prefixes {
			origin, ok := rt.Origin(p.Nth(100))
			if !ok || origin != asn {
				t.Fatalf("prefix %v origin = %d,%v want %d", p, origin, ok, asn)
			}
		}
	}
}

func TestSlash24Enumeration(t *testing.T) {
	topo := topology.Generate(topology.DefaultParams())
	rt := BuildRoutedTable(topo)
	s24s := rt.Slash24s()
	if len(s24s) == 0 {
		t.Fatal("no /24s")
	}
	seen := map[netx.Addr]bool{}
	for _, p := range s24s {
		if p.Bits() != 24 {
			t.Fatalf("non-/24 %v in enumeration", p)
		}
		if seen[p.Base()] {
			t.Fatalf("duplicate /24 %v", p)
		}
		seen[p.Base()] = true
		if _, ok := rt.Origin(p.Nth(1)); !ok {
			t.Fatalf("/24 %v not within routed space", p)
		}
	}
	// A /20 holds 16 /24s, so the enumeration must be bigger than the
	// prefix count.
	if len(s24s) < rt.Len()*8 {
		t.Fatalf("suspiciously few /24s: %d for %d prefixes", len(s24s), rt.Len())
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Two equal-length provider routes: the lower next-hop ASN wins.
	ases := []*topology.AS{
		mkAS(1, topology.Tier1), mkAS(2, topology.Tier1),
		mkAS(30, topology.TierStub), mkAS(40, topology.TierStub),
	}
	links := []topology.Link{
		p2p(1, 2),
		c2p(30, 1), c2p(30, 2),
		c2p(40, 1), c2p(40, 2),
	}
	r := New(topology.NewManual(ases, links, nil))
	got := pathASNs(t, r, 30, 40)
	if !eq(got, []topology.ASN{30, 1, 40}) {
		t.Fatalf("tie-break path = %v, want via AS1", got)
	}
}
