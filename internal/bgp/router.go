// Package bgp computes interdomain routes over a topology under the
// standard Gao-Rexford policy model: routes learned from customers are
// exported to everyone; routes learned from peers or providers are
// exported only to customers. Every AS prefers customer routes over peer
// routes over provider routes, then shorter AS paths, then the lowest
// next-hop ASN (a deterministic stand-in for tie-breaking on router IDs).
//
// The router computes one spanning "routing tree" per destination AS with
// a three-phase BFS and caches it; paths for any source are read off the
// tree. Link failures (e.g. from a cable cut) invalidate the cache.
package bgp

import (
	"sort"
	"sync"

	"github.com/afrinet/observatory/internal/topology"
)

// RouteType orders route preference: customer > peer > provider.
type RouteType int

const (
	RouteNone RouteType = iota
	RouteSelf
	RouteCustomer
	RoutePeer
	RouteProvider
)

func (r RouteType) String() string {
	switch r {
	case RouteSelf:
		return "self"
	case RouteCustomer:
		return "customer"
	case RoutePeer:
		return "peer"
	case RouteProvider:
		return "provider"
	default:
		return "none"
	}
}

// neighbor is one adjacency with its relationship seen from the local AS.
type neighbor struct {
	asn  topology.ASN
	link topology.LinkID
}

// adjacency holds each AS's neighbors grouped by relationship.
type adjacency struct {
	customers []neighbor
	providers []neighbor
	peers     []neighbor
}

// Router computes and caches per-destination routing trees.
type Router struct {
	topo *topology.Topology

	mu    sync.Mutex
	adj   map[topology.ASN]*adjacency
	trees map[topology.ASN]*Tree
	down  map[topology.LinkID]bool
}

// New builds a router for the topology with all links up.
func New(t *topology.Topology) *Router {
	r := &Router{
		topo:  t,
		trees: make(map[topology.ASN]*Tree),
		down:  make(map[topology.LinkID]bool),
	}
	r.rebuildAdjacency()
	return r
}

func (r *Router) rebuildAdjacency() {
	adj := make(map[topology.ASN]*adjacency, len(r.topo.ASes))
	get := func(a topology.ASN) *adjacency {
		x := adj[a]
		if x == nil {
			x = &adjacency{}
			adj[a] = x
		}
		return x
	}
	for i := range r.topo.Links {
		l := &r.topo.Links[i]
		if r.down[l.ID] {
			continue
		}
		switch l.Kind {
		case topology.CustomerProvider:
			get(l.A).providers = append(get(l.A).providers, neighbor{l.B, l.ID})
			get(l.B).customers = append(get(l.B).customers, neighbor{l.A, l.ID})
		case topology.PeerPeer:
			get(l.A).peers = append(get(l.A).peers, neighbor{l.B, l.ID})
			get(l.B).peers = append(get(l.B).peers, neighbor{l.A, l.ID})
		}
	}
	for _, x := range adj {
		sortNeighbors(x.customers)
		sortNeighbors(x.providers)
		sortNeighbors(x.peers)
	}
	r.adj = adj
}

func sortNeighbors(ns []neighbor) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].asn < ns[j].asn })
}

// SetLinkDown marks a link failed (true) or restored (false) and drops
// all cached trees.
func (r *Router) SetLinkDown(id topology.LinkID, isDown bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if isDown {
		r.down[id] = true
	} else {
		delete(r.down, id)
	}
	r.trees = make(map[topology.ASN]*Tree)
	r.rebuildAdjacency()
}

// SetLinksDown applies a batch of failures in one cache invalidation.
func (r *Router) SetLinksDown(ids []topology.LinkID, isDown bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, id := range ids {
		if isDown {
			r.down[id] = true
		} else {
			delete(r.down, id)
		}
	}
	r.trees = make(map[topology.ASN]*Tree)
	r.rebuildAdjacency()
}

// ResetFailures restores every link.
func (r *Router) ResetFailures() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.down = make(map[topology.LinkID]bool)
	r.trees = make(map[topology.ASN]*Tree)
	r.rebuildAdjacency()
}

// DownLinks returns the currently failed links, sorted.
func (r *Router) DownLinks() []topology.LinkID {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]topology.LinkID, 0, len(r.down))
	for id := range r.down {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// entry is one AS's best route toward the tree's destination.
type entry struct {
	via   topology.ASN
	link  topology.LinkID
	rtype RouteType
	hops  int
}

// Tree is the routing tree for one destination: for every AS that can
// reach the destination, its best next hop.
type Tree struct {
	Dest topology.ASN
	next map[topology.ASN]entry
}

// Reachable reports whether src has any route to the destination.
func (t *Tree) Reachable(src topology.ASN) bool {
	if src == t.Dest {
		return true
	}
	_, ok := t.next[src]
	return ok
}

// NextHop returns src's best next hop toward the destination.
func (t *Tree) NextHop(src topology.ASN) (topology.ASN, topology.LinkID, RouteType, bool) {
	e, ok := t.next[src]
	return e.via, e.link, e.rtype, ok
}

// Size returns the number of ASes with a route to the destination
// (excluding the destination itself).
func (t *Tree) Size() int { return len(t.next) }

// Tree returns the routing tree for dest, computing and caching it on
// first use. Trees are safe for concurrent reads.
func (r *Router) Tree(dest topology.ASN) *Tree {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.trees[dest]; ok {
		return t
	}
	t := r.computeTree(dest)
	r.trees[dest] = t
	return t
}

// computeTree runs the three-phase valley-free BFS. It must be called
// with r.mu held.
func (r *Router) computeTree(dest topology.ASN) *Tree {
	t := &Tree{Dest: dest, next: make(map[topology.ASN]entry)}
	if _, ok := r.topo.ASes[dest]; !ok {
		return t
	}

	better := func(old entry, cand entry) bool {
		if old.rtype == RouteNone {
			return true
		}
		if cand.rtype != old.rtype {
			return cand.rtype < old.rtype
		}
		if cand.hops != old.hops {
			return cand.hops < old.hops
		}
		return cand.via < old.via
	}
	get := func(a topology.ASN) entry {
		if a == dest {
			return entry{rtype: RouteSelf}
		}
		return t.next[a] // zero value has RouteNone
	}
	set := func(a topology.ASN, e entry) bool {
		if a == dest {
			return false
		}
		if old := get(a); better(old, e) {
			t.next[a] = e
			return true
		}
		return false
	}

	// Phase 1: customer routes climb provider edges from the
	// destination. BFS level by level, nodes in ascending ASN order so
	// ties resolve to the lowest next hop.
	frontier := []topology.ASN{dest}
	hops := 0
	inP1 := map[topology.ASN]bool{dest: true}
	for len(frontier) > 0 {
		hops++
		var next []topology.ASN
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		for _, u := range frontier {
			a := r.adj[u]
			if a == nil {
				continue
			}
			for _, prov := range a.providers {
				if set(prov.asn, entry{via: u, link: prov.link, rtype: RouteCustomer, hops: hops}) {
					if !inP1[prov.asn] {
						inP1[prov.asn] = true
						next = append(next, prov.asn)
					}
				}
			}
		}
		frontier = next
	}

	// Phase 2: one peer hop from any AS holding a self/customer route.
	var p1nodes []topology.ASN
	p1nodes = append(p1nodes, dest)
	for a, e := range t.next {
		if e.rtype == RouteCustomer {
			p1nodes = append(p1nodes, a)
		}
	}
	sort.Slice(p1nodes, func(i, j int) bool { return p1nodes[i] < p1nodes[j] })
	for _, u := range p1nodes {
		a := r.adj[u]
		if a == nil {
			continue
		}
		uh := 0
		if u != dest {
			uh = t.next[u].hops
		}
		for _, p := range a.peers {
			set(p.asn, entry{via: u, link: p.link, rtype: RoutePeer, hops: uh + 1})
		}
	}

	// Phase 3: provider routes descend customer edges from every AS
	// that has any route, propagating through further customers.
	type seed struct {
		asn  topology.ASN
		hops int
	}
	var seeds []seed
	seeds = append(seeds, seed{dest, 0})
	for a, e := range t.next {
		seeds = append(seeds, seed{a, e.hops})
	}
	sort.Slice(seeds, func(i, j int) bool {
		if seeds[i].hops != seeds[j].hops {
			return seeds[i].hops < seeds[j].hops
		}
		return seeds[i].asn < seeds[j].asn
	})
	// Dijkstra-style expansion by hop count (uniform weights, so a
	// sorted queue sweep is enough).
	queue := seeds
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		// Skip stale queue entries.
		if u.asn != dest {
			if e, ok := t.next[u.asn]; !ok || e.hops != u.hops {
				continue
			}
		}
		a := r.adj[u.asn]
		if a == nil {
			continue
		}
		for _, cust := range a.customers {
			if set(cust.asn, entry{via: u.asn, link: cust.link, rtype: RouteProvider, hops: u.hops + 1}) {
				queue = append(queue, seed{cust.asn, u.hops + 1})
			}
		}
	}
	// Queue sweep above appends out of order; a second sweep settles
	// any node relaxed after being dequeued. Uniform weights make one
	// extra settling pass sufficient in theory only for BFS order, so
	// loop until fixed point (bounded by graph diameter, tiny here).
	for changed := true; changed; {
		changed = false
		for _, asn := range r.topo.ASNs() {
			e, ok := t.next[asn]
			if !ok && asn != dest {
				continue
			}
			h := 0
			if asn != dest {
				h = e.hops
			}
			a := r.adj[asn]
			if a == nil {
				continue
			}
			for _, cust := range a.customers {
				if set(cust.asn, entry{via: asn, link: cust.link, rtype: RouteProvider, hops: h + 1}) {
					changed = true
				}
			}
		}
	}
	return t
}

// Hop is one step of an AS-level path.
type Hop struct {
	ASN  topology.ASN
	Link topology.LinkID // link used to reach this AS (undefined for the first hop)
}

// Path is an AS-level forwarding path.
type Path struct {
	Hops []Hop
}

// ASNs returns the AS sequence of the path.
func (p Path) ASNs() []topology.ASN {
	out := make([]topology.ASN, len(p.Hops))
	for i, h := range p.Hops {
		out[i] = h.ASN
	}
	return out
}

// Len returns the number of ASes on the path.
func (p Path) Len() int { return len(p.Hops) }

// Path returns the forwarding path from src to dst, or ok=false when dst
// is unreachable from src.
func (r *Router) Path(src, dst topology.ASN) (Path, bool) {
	if src == dst {
		return Path{Hops: []Hop{{ASN: src}}}, true
	}
	tree := r.Tree(dst)
	if !tree.Reachable(src) {
		return Path{}, false
	}
	p := Path{Hops: []Hop{{ASN: src}}}
	at := src
	for at != dst {
		e, ok := tree.next[at]
		if !ok {
			return Path{}, false
		}
		p.Hops = append(p.Hops, Hop{ASN: e.via, Link: e.link})
		at = e.via
		if len(p.Hops) > len(r.topo.ASNs())+1 {
			// A cycle here would be a routing-model bug; fail loudly in
			// tests rather than looping.
			panic("bgp: forwarding loop")
		}
	}
	return p, true
}

// Reachable reports whether dst is reachable from src.
func (r *Router) Reachable(src, dst topology.ASN) bool {
	if src == dst {
		return true
	}
	return r.Tree(dst).Reachable(src)
}
