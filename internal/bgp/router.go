// Package bgp computes interdomain routes over a topology under the
// standard Gao-Rexford policy model: routes learned from customers are
// exported to everyone; routes learned from peers or providers are
// exported only to customers. Every AS prefers customer routes over peer
// routes over provider routes, then shorter AS paths, then the lowest
// next-hop ASN (a deterministic stand-in for tie-breaking on router IDs).
//
// The router computes one spanning "routing tree" per destination AS with
// a three-phase BFS and caches it; paths for any source are read off the
// tree. Link failures (e.g. from a cable cut) invalidate the cache.
//
// Locking protocol: a read-mostly design. Router state (the adjacency
// view and the tree-slot map) sits behind a sync.RWMutex that is only
// ever held for map lookups and pointer swaps — never while a BFS runs.
// Each destination gets a treeSlot whose sync.Once is the per-destination
// singleflight: N goroutines asking for the same dest compute it once,
// different dests compute in parallel. A slot captures the adjacency view
// current at its creation, so invalidation (which swaps in a fresh slot
// map) can never hand a caller a tree computed from a stale view.
package bgp

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/afrinet/observatory/internal/par"
	"github.com/afrinet/observatory/internal/topology"
)

// RouteType orders route preference: customer > peer > provider.
type RouteType int

const (
	RouteNone RouteType = iota
	RouteSelf
	RouteCustomer
	RoutePeer
	RouteProvider
)

func (r RouteType) String() string {
	switch r {
	case RouteSelf:
		return "self"
	case RouteCustomer:
		return "customer"
	case RoutePeer:
		return "peer"
	case RouteProvider:
		return "provider"
	default:
		return "none"
	}
}

// neighbor is one adjacency with its relationship seen from the local AS.
type neighbor struct {
	asn  topology.ASN
	link topology.LinkID
}

// adjacency holds each AS's neighbors grouped by relationship.
type adjacency struct {
	customers []neighbor
	providers []neighbor
	peers     []neighbor
}

// treeSlot is the singleflight cell for one destination's tree. adj is
// the adjacency view captured when the slot was created; once guards the
// single BFS; tree is written exactly once under the Once.
type treeSlot struct {
	once sync.Once
	adj  map[topology.ASN]*adjacency
	tree *Tree
}

// Router computes and caches per-destination routing trees.
type Router struct {
	topo *topology.Topology

	// base is the all-links-up adjacency, built and sorted once in New
	// and immutable afterwards. linkEnds maps each link to its two
	// endpoint ASes so failures can patch only the affected entries.
	base     map[topology.ASN]*adjacency
	linkEnds map[topology.LinkID][2]topology.ASN

	// gen increments on every cache invalidation. Callers that memoize
	// derived results (e.g. path-quality caches) key them by Gen().
	gen atomic.Uint64

	mu    sync.RWMutex // guards adj, trees, down (short critical sections only)
	adj   map[topology.ASN]*adjacency
	trees map[topology.ASN]*treeSlot
	down  map[topology.LinkID]bool
}

// New builds a router for the topology with all links up.
func New(t *topology.Topology) *Router {
	r := &Router{
		topo:     t,
		linkEnds: make(map[topology.LinkID][2]topology.ASN, len(t.Links)),
		trees:    make(map[topology.ASN]*treeSlot),
		down:     make(map[topology.LinkID]bool),
	}
	for i := range t.Links {
		l := &t.Links[i]
		r.linkEnds[l.ID] = [2]topology.ASN{l.A, l.B}
	}
	r.base = buildBaseAdjacency(t)
	r.adj = r.base
	return r
}

// buildBaseAdjacency builds the all-links-up adjacency with every
// neighbor list sorted by ASN. It runs once per Router.
func buildBaseAdjacency(t *topology.Topology) map[topology.ASN]*adjacency {
	adj := make(map[topology.ASN]*adjacency, len(t.ASes))
	get := func(a topology.ASN) *adjacency {
		x := adj[a]
		if x == nil {
			x = &adjacency{}
			adj[a] = x
		}
		return x
	}
	for i := range t.Links {
		l := &t.Links[i]
		switch l.Kind {
		case topology.CustomerProvider:
			get(l.A).providers = append(get(l.A).providers, neighbor{l.B, l.ID})
			get(l.B).customers = append(get(l.B).customers, neighbor{l.A, l.ID})
		case topology.PeerPeer:
			get(l.A).peers = append(get(l.A).peers, neighbor{l.B, l.ID})
			get(l.B).peers = append(get(l.B).peers, neighbor{l.A, l.ID})
		}
	}
	for _, x := range adj {
		sortNeighbors(x.customers)
		sortNeighbors(x.providers)
		sortNeighbors(x.peers)
	}
	return adj
}

func sortNeighbors(ns []neighbor) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].asn < ns[j].asn })
}

// applyDownLocked derives the current adjacency view from base and the
// down set. With nothing down it aliases base outright; otherwise only
// the ASes touching a failed link get filtered copies of their neighbor
// lists (filtering preserves sort order, so nothing is re-sorted).
// Must be called with r.mu held for writing.
func (r *Router) applyDownLocked() {
	if len(r.down) == 0 {
		r.adj = r.base
		return
	}
	affected := make(map[topology.ASN]bool, 2*len(r.down))
	for id := range r.down {
		ends := r.linkEnds[id]
		affected[ends[0]] = true
		affected[ends[1]] = true
	}
	adj := make(map[topology.ASN]*adjacency, len(r.base))
	for a, x := range r.base {
		if affected[a] {
			adj[a] = &adjacency{
				customers: r.filterUp(x.customers),
				providers: r.filterUp(x.providers),
				peers:     r.filterUp(x.peers),
			}
		} else {
			adj[a] = x
		}
	}
	r.adj = adj
}

// filterUp copies ns without the neighbors reached over a down link.
func (r *Router) filterUp(ns []neighbor) []neighbor {
	out := make([]neighbor, 0, len(ns))
	for _, n := range ns {
		if !r.down[n.link] {
			out = append(out, n)
		}
	}
	return out
}

// invalidateLocked drops every cached tree and bumps the generation.
// In-flight computations on old slots finish against their captured
// adjacency and are simply never re-read — callers that fetched a slot
// before the swap observe a tree consistent with the pre-change state,
// which is the same linearization as completing their call first.
// Must be called with r.mu held for writing.
func (r *Router) invalidateLocked() {
	r.trees = make(map[topology.ASN]*treeSlot)
	r.gen.Add(1)
}

// Invalidate drops all cached trees without changing link state. It
// exists for benchmarks and tests that need to re-measure a cold cache.
func (r *Router) Invalidate() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.invalidateLocked()
}

// Gen returns the invalidation generation. It increments on every
// SetLinkDown/SetLinksDown/SetDownLinks/ResetFailures/Invalidate that
// actually changed state, so derived caches can be keyed by it.
func (r *Router) Gen() uint64 { return r.gen.Load() }

// SetLinkDown marks a link failed (true) or restored (false) and drops
// all cached trees. Calls that leave the link in its current state are
// no-ops and keep the cache.
func (r *Router) SetLinkDown(id topology.LinkID, isDown bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.down[id] == isDown {
		return
	}
	if isDown {
		r.down[id] = true
	} else {
		delete(r.down, id)
	}
	r.applyDownLocked()
	r.invalidateLocked()
}

// SetLinksDown applies a batch of failures in one cache invalidation.
// If no link changes state the call is a no-op and the cache survives.
func (r *Router) SetLinksDown(ids []topology.LinkID, isDown bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	changed := false
	for _, id := range ids {
		if r.down[id] == isDown {
			continue
		}
		changed = true
		if isDown {
			r.down[id] = true
		} else {
			delete(r.down, id)
		}
	}
	if !changed {
		return
	}
	r.applyDownLocked()
	r.invalidateLocked()
}

// SetDownLinks replaces the whole failure set in one call — the
// transactional form used when a simulation re-realizes its failure
// state. Equal old and new sets are a no-op that keeps every cached
// tree, so repeated re-realizations with an unchanged set cost nothing.
func (r *Router) SetDownLinks(ids []topology.LinkID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(ids) == len(r.down) {
		same := true
		for _, id := range ids {
			if !r.down[id] {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	r.down = make(map[topology.LinkID]bool, len(ids))
	for _, id := range ids {
		r.down[id] = true
	}
	r.applyDownLocked()
	r.invalidateLocked()
}

// ResetFailures restores every link. A no-op when nothing is down.
func (r *Router) ResetFailures() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.down) == 0 {
		return
	}
	r.down = make(map[topology.LinkID]bool)
	r.adj = r.base
	r.invalidateLocked()
}

// DownLinks returns the currently failed links, sorted.
func (r *Router) DownLinks() []topology.LinkID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]topology.LinkID, 0, len(r.down))
	for id := range r.down {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// entry is one AS's best route toward the tree's destination.
type entry struct {
	via   topology.ASN
	link  topology.LinkID
	rtype RouteType
	hops  int
}

// Tree is the routing tree for one destination: for every AS that can
// reach the destination, its best next hop.
type Tree struct {
	Dest topology.ASN
	next map[topology.ASN]entry
}

// Reachable reports whether src has any route to the destination.
func (t *Tree) Reachable(src topology.ASN) bool {
	if src == t.Dest {
		return true
	}
	_, ok := t.next[src]
	return ok
}

// NextHop returns src's best next hop toward the destination.
func (t *Tree) NextHop(src topology.ASN) (topology.ASN, topology.LinkID, RouteType, bool) {
	e, ok := t.next[src]
	return e.via, e.link, e.rtype, ok
}

// Size returns the number of ASes with a route to the destination
// (excluding the destination itself).
func (t *Tree) Size() int { return len(t.next) }

// Tree returns the routing tree for dest, computing and caching it on
// first use. Concurrent callers for the same dest share one computation;
// different dests compute in parallel. Trees are immutable once built
// and safe for concurrent reads.
func (r *Router) Tree(dest topology.ASN) *Tree {
	r.mu.RLock()
	slot := r.trees[dest]
	r.mu.RUnlock()
	if slot == nil {
		r.mu.Lock()
		slot = r.trees[dest]
		if slot == nil {
			slot = &treeSlot{adj: r.adj}
			r.trees[dest] = slot
		}
		r.mu.Unlock()
	}
	// The BFS runs outside the router lock: only callers waiting on this
	// very destination block here.
	slot.once.Do(func() {
		slot.tree = computeTree(r.topo, slot.adj, dest)
	})
	return slot.tree
}

// Precompute warms the tree cache for dests using a bounded worker pool
// (workers <= 0 means GOMAXPROCS). Duplicate destinations are computed
// once thanks to the per-destination singleflight.
func (r *Router) Precompute(dests []topology.ASN, workers int) {
	par.ForEach(workers, len(dests), func(i int) {
		r.Tree(dests[i])
	})
}

// computeTree runs the three-phase valley-free BFS over an immutable
// adjacency snapshot. It is a pure function of (topo, adj, dest) and
// holds no locks, so distinct destinations compute concurrently.
func computeTree(topo *topology.Topology, adjMap map[topology.ASN]*adjacency, dest topology.ASN) *Tree {
	t := &Tree{Dest: dest, next: make(map[topology.ASN]entry)}
	if _, ok := topo.ASes[dest]; !ok {
		return t
	}

	better := func(old entry, cand entry) bool {
		if old.rtype == RouteNone {
			return true
		}
		if cand.rtype != old.rtype {
			return cand.rtype < old.rtype
		}
		if cand.hops != old.hops {
			return cand.hops < old.hops
		}
		return cand.via < old.via
	}
	get := func(a topology.ASN) entry {
		if a == dest {
			return entry{rtype: RouteSelf}
		}
		return t.next[a] // zero value has RouteNone
	}
	set := func(a topology.ASN, e entry) bool {
		if a == dest {
			return false
		}
		if old := get(a); better(old, e) {
			t.next[a] = e
			return true
		}
		return false
	}

	// Phase 1: customer routes climb provider edges from the
	// destination. BFS level by level, nodes in ascending ASN order so
	// ties resolve to the lowest next hop.
	frontier := []topology.ASN{dest}
	hops := 0
	inP1 := map[topology.ASN]bool{dest: true}
	for len(frontier) > 0 {
		hops++
		var next []topology.ASN
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		for _, u := range frontier {
			a := adjMap[u]
			if a == nil {
				continue
			}
			for _, prov := range a.providers {
				if set(prov.asn, entry{via: u, link: prov.link, rtype: RouteCustomer, hops: hops}) {
					if !inP1[prov.asn] {
						inP1[prov.asn] = true
						next = append(next, prov.asn)
					}
				}
			}
		}
		frontier = next
	}

	// Phase 2: one peer hop from any AS holding a self/customer route.
	var p1nodes []topology.ASN
	p1nodes = append(p1nodes, dest)
	for a, e := range t.next {
		if e.rtype == RouteCustomer {
			p1nodes = append(p1nodes, a)
		}
	}
	sort.Slice(p1nodes, func(i, j int) bool { return p1nodes[i] < p1nodes[j] })
	for _, u := range p1nodes {
		a := adjMap[u]
		if a == nil {
			continue
		}
		uh := 0
		if u != dest {
			uh = t.next[u].hops
		}
		for _, p := range a.peers {
			set(p.asn, entry{via: u, link: p.link, rtype: RoutePeer, hops: uh + 1})
		}
	}

	// Phase 3: provider routes descend customer edges from every AS
	// that has any route, propagating through further customers.
	type seed struct {
		asn  topology.ASN
		hops int
	}
	var seeds []seed
	seeds = append(seeds, seed{dest, 0})
	for a, e := range t.next {
		seeds = append(seeds, seed{a, e.hops})
	}
	sort.Slice(seeds, func(i, j int) bool {
		if seeds[i].hops != seeds[j].hops {
			return seeds[i].hops < seeds[j].hops
		}
		return seeds[i].asn < seeds[j].asn
	})
	// Dijkstra-style expansion by hop count (uniform weights, so a
	// sorted queue sweep is enough).
	queue := seeds
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		// Skip stale queue entries.
		if u.asn != dest {
			if e, ok := t.next[u.asn]; !ok || e.hops != u.hops {
				continue
			}
		}
		a := adjMap[u.asn]
		if a == nil {
			continue
		}
		for _, cust := range a.customers {
			if set(cust.asn, entry{via: u.asn, link: cust.link, rtype: RouteProvider, hops: u.hops + 1}) {
				queue = append(queue, seed{cust.asn, u.hops + 1})
			}
		}
	}
	// Queue sweep above appends out of order; a second sweep settles
	// any node relaxed after being dequeued. Uniform weights make one
	// extra settling pass sufficient in theory only for BFS order, so
	// loop until fixed point (bounded by graph diameter, tiny here).
	for changed := true; changed; {
		changed = false
		for _, asn := range topo.ASNs() {
			e, ok := t.next[asn]
			if !ok && asn != dest {
				continue
			}
			h := 0
			if asn != dest {
				h = e.hops
			}
			a := adjMap[asn]
			if a == nil {
				continue
			}
			for _, cust := range a.customers {
				if set(cust.asn, entry{via: asn, link: cust.link, rtype: RouteProvider, hops: h + 1}) {
					changed = true
				}
			}
		}
	}
	return t
}

// Hop is one step of an AS-level path.
type Hop struct {
	ASN  topology.ASN
	Link topology.LinkID // link used to reach this AS (undefined for the first hop)
}

// Path is an AS-level forwarding path.
type Path struct {
	Hops []Hop
}

// ASNs returns the AS sequence of the path.
func (p Path) ASNs() []topology.ASN {
	out := make([]topology.ASN, len(p.Hops))
	for i, h := range p.Hops {
		out[i] = h.ASN
	}
	return out
}

// Len returns the number of ASes on the path.
func (p Path) Len() int { return len(p.Hops) }

// Path returns the forwarding path from src to dst, or ok=false when dst
// is unreachable from src.
func (r *Router) Path(src, dst topology.ASN) (Path, bool) {
	if src == dst {
		return Path{Hops: []Hop{{ASN: src}}}, true
	}
	tree := r.Tree(dst)
	if !tree.Reachable(src) {
		return Path{}, false
	}
	p := Path{Hops: []Hop{{ASN: src}}}
	at := src
	for at != dst {
		e, ok := tree.next[at]
		if !ok {
			return Path{}, false
		}
		p.Hops = append(p.Hops, Hop{ASN: e.via, Link: e.link})
		at = e.via
		if len(p.Hops) > len(r.topo.ASNs())+1 {
			// A cycle here would be a routing-model bug; fail loudly in
			// tests rather than looping.
			panic("bgp: forwarding loop")
		}
	}
	return p, true
}

// Reachable reports whether dst is reachable from src.
func (r *Router) Reachable(src, dst topology.ASN) bool {
	if src == dst {
		return true
	}
	return r.Tree(dst).Reachable(src)
}
