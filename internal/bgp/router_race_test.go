package bgp

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/afrinet/observatory/internal/topology"
)

// raceTopo builds a mid-sized topology for the stress tests.
func raceTopo(t *testing.T) *topology.Topology {
	t.Helper()
	return topology.Generate(topology.Params{Seed: 7, Year: 2025})
}

// usesLink reports whether any entry of the tree forwards over link id.
func usesLink(tr *Tree, id topology.LinkID) bool {
	for _, e := range tr.next {
		if e.link == id {
			return true
		}
	}
	return false
}

// TestTreeConcurrentStress hammers Tree/Path/Reachable from many reader
// goroutines while a flipper goroutine takes links down and up. After
// each flip the flipper immediately asks for fresh trees and asserts the
// invalidation took effect: a tree fetched after SetLinkDown(id, true)
// returns must never forward over id. Run under -race this also proves
// the locking protocol has no data races.
func TestTreeConcurrentStress(t *testing.T) {
	topo := raceTopo(t)
	r := New(topo)
	asns := topo.ASNs()
	if len(asns) < 10 || len(topo.Links) < 10 {
		t.Fatalf("topology too small: %d ASes, %d links", len(asns), len(topo.Links))
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Readers: mixed Tree/Path/Reachable traffic over a rotating window
	// of destinations so slots are shared and re-created constantly.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				dst := asns[(g*31+i)%len(asns)]
				src := asns[(g*17+i*7)%len(asns)]
				switch i % 3 {
				case 0:
					if tr := r.Tree(dst); tr.Dest != dst {
						t.Errorf("tree for %d has Dest %d", dst, tr.Dest)
						return
					}
				case 1:
					if p, ok := r.Path(src, dst); ok && p.Hops[0].ASN != src {
						t.Errorf("path from %d starts at %d", src, p.Hops[0].ASN)
						return
					}
				default:
					r.Reachable(src, dst)
				}
			}
		}(g)
	}

	// Flipper: serially flips links and checks freshness after each flip.
	const flips = 200
	for i := 0; i < flips; i++ {
		id := topo.Links[(i*13)%len(topo.Links)].ID
		dst := asns[(i*41)%len(asns)]

		r.SetLinkDown(id, true)
		if tr := r.Tree(dst); usesLink(tr, id) {
			t.Fatalf("flip %d: tree for %d forwards over down link %d", i, dst, id)
		}
		gen := r.Gen()

		r.SetLinkDown(id, false)
		if r.Gen() == gen {
			t.Fatalf("flip %d: restore did not bump generation", i)
		}
		// No-op flips must keep the cache (and the generation).
		gen = r.Gen()
		r.SetLinkDown(id, false)
		r.ResetFailures()
		if r.Gen() != gen {
			t.Fatalf("flip %d: no-op calls bumped generation", i)
		}
	}

	stop.Store(true)
	wg.Wait()
}

// TestPrecomputeWarmsCache checks the bulk warmer computes every
// requested tree (duplicates included) and that warmed lookups return
// the identical cached object.
func TestPrecomputeWarmsCache(t *testing.T) {
	topo := raceTopo(t)
	r := New(topo)
	asns := topo.ASNs()
	dests := make([]topology.ASN, 0, 64)
	for i := 0; i < 64; i++ {
		dests = append(dests, asns[i%len(asns)]) // includes duplicates
	}
	r.Precompute(dests, 8)
	for _, d := range dests {
		first := r.Tree(d)
		if second := r.Tree(d); second != first {
			t.Fatalf("dest %d: Tree not served from cache after Precompute", d)
		}
	}
}

// TestSetDownLinksTransactional checks the whole-set API: equal sets are
// no-ops, changed sets invalidate, and the resulting down set is exact.
func TestSetDownLinksTransactional(t *testing.T) {
	topo := raceTopo(t)
	r := New(topo)
	a, b := topo.Links[0].ID, topo.Links[1].ID

	r.SetDownLinks([]topology.LinkID{a, b})
	got := r.DownLinks()
	if len(got) != 2 {
		t.Fatalf("DownLinks = %v, want {%d,%d}", got, a, b)
	}
	gen := r.Gen()
	r.SetDownLinks([]topology.LinkID{b, a}) // same set, different order
	if r.Gen() != gen {
		t.Fatal("equal down set bumped generation")
	}
	r.SetDownLinks([]topology.LinkID{a})
	if r.Gen() == gen {
		t.Fatal("shrinking down set did not invalidate")
	}
	if got := r.DownLinks(); len(got) != 1 || got[0] != a {
		t.Fatalf("DownLinks = %v, want {%d}", got, a)
	}
	r.SetDownLinks(nil)
	if got := r.DownLinks(); len(got) != 0 {
		t.Fatalf("DownLinks = %v, want empty", got)
	}
}
