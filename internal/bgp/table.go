package bgp

import (
	"sort"

	"github.com/afrinet/observatory/internal/netx"
	"github.com/afrinet/observatory/internal/topology"
)

// RoutedTable is the global BGP table view (the AS6447/potaroo analogue):
// every prefix an AS originates, with longest-prefix-match lookup.
// IXP peering LANs are deliberately absent — operators do not advertise
// them (RFC 7454 practice), which is the root cause of the poor IXP
// coverage in the paper's Table 1.
type RoutedTable struct {
	trie     netx.Trie[topology.ASN]
	prefixes []RoutedPrefix
}

// RoutedPrefix is one table entry.
type RoutedPrefix struct {
	Prefix netx.Prefix
	Origin topology.ASN
}

// BuildRoutedTable extracts the advertised-prefix table from a topology.
func BuildRoutedTable(t *topology.Topology) *RoutedTable {
	rt := &RoutedTable{}
	for _, asn := range t.ASNs() {
		as := t.ASes[asn]
		if as.Type == topology.ASIXPRouteServer {
			continue // peering LANs are not advertised
		}
		for _, p := range as.Prefixes {
			rt.trie.Insert(p, asn)
			rt.prefixes = append(rt.prefixes, RoutedPrefix{Prefix: p, Origin: asn})
		}
	}
	sort.Slice(rt.prefixes, func(i, j int) bool {
		a, b := rt.prefixes[i].Prefix, rt.prefixes[j].Prefix
		if a.Base() != b.Base() {
			return a.Base() < b.Base()
		}
		return a.Bits() < b.Bits()
	})
	return rt
}

// Origin returns the origin AS of the longest matching advertised prefix.
func (rt *RoutedTable) Origin(a netx.Addr) (topology.ASN, bool) {
	return rt.trie.Lookup(a)
}

// Prefixes returns all table entries in address order.
func (rt *RoutedTable) Prefixes() []RoutedPrefix { return rt.prefixes }

// Len returns the number of advertised prefixes.
func (rt *RoutedTable) Len() int { return len(rt.prefixes) }

// Slash24s enumerates every routed /24 (the CAIDA topology target set).
func (rt *RoutedTable) Slash24s() []netx.Prefix {
	var out []netx.Prefix
	seen := make(map[netx.Addr]bool)
	for _, rp := range rt.prefixes {
		p := rp.Prefix
		if p.Bits() > 24 {
			p24 := netx.MakePrefix(p.Base(), 24)
			if !seen[p24.Base()] {
				seen[p24.Base()] = true
				out = append(out, p24)
			}
			continue
		}
		for _, s := range p.Subnets(24, 0) {
			if !seen[s.Base()] {
				seen[s.Base()] = true
				out = append(out, s)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base() < out[j].Base() })
	return out
}
