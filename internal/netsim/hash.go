package netsim

// Deterministic per-event randomness. Every stochastic decision in the
// data plane (hop response, jitter, loss) is a pure function of the
// network seed and the event coordinates, so repeated measurements of an
// unchanged network return identical results and the whole repository is
// reproducible run-to-run.

// splitmix64 is the SplitMix64 finalizer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix folds any number of values into one 64-bit hash.
func mix(vals ...uint64) uint64 {
	h := uint64(0x8445d61a4e774912)
	for _, v := range vals {
		h = splitmix64(h ^ v)
	}
	return h
}

// float01 maps a hash to [0,1).
func float01(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}
