package netsim

import (
	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/netx"
	"github.com/afrinet/observatory/internal/topology"
)

// TraceHop is one responding (or silent) hop of a traceroute.
type TraceHop struct {
	TTL  int
	Addr netx.Addr // 0 for a silent hop ("*")
	RTT  float64   // milliseconds; 0 for silent hops

	// Ground-truth annotations. Measurement tools must NOT use these —
	// they re-derive ASN/IXP/location with their own (imperfect)
	// methods; tests use them as the oracle.
	TrueASN     topology.ASN
	TrueIXP     topology.IXPID // nonzero when the hop address is on an IXP LAN
	TrueLink    topology.LinkID
	TrueCountry string
	TrueCoord   geo.Coord
}

// Traceroute is the result of one TTL-limited probe sequence.
type Traceroute struct {
	SrcASN  topology.ASN
	DstASN  topology.ASN
	SrcAddr netx.Addr
	DstAddr netx.Addr
	Hops    []TraceHop
	Reached bool    // destination answered
	RTT     float64 // end-to-end RTT if reached
}

// ASPath returns the distinct true AS sequence seen on the hops.
func (tr *Traceroute) ASPath() []topology.ASN {
	var out []topology.ASN
	for _, h := range tr.Hops {
		if h.TrueASN == 0 {
			continue
		}
		if len(out) == 0 || out[len(out)-1] != h.TrueASN {
			out = append(out, h.TrueASN)
		}
	}
	return out
}

// Traceroute probes from a host in srcASN toward dst, returning the
// router-level path. Addressing follows operational practice: the far
// end of an IXP-fabric peering link answers from its IXP LAN interface
// address — the signal traIXroute-style detection relies on.
//
// The result is a pure function of (seed, src, dst, routing generation,
// failure epoch) and is memoized on that key; experiment drivers probe
// the same pairs repeatedly. Memoized results share their Hops slice, so
// callers must treat the Traceroute as read-only (all current consumers
// do — the wire layer copies hops into its own record format).
func (n *Net) Traceroute(srcASN topology.ASN, dst netx.Addr) Traceroute {
	memo := n.trMemoFor()
	key := trKey{src: srcASN, dst: dst}
	if v, ok := memo.m.Load(key); ok {
		return v.(Traceroute)
	}
	tr := n.tracerouteUncached(srcASN, dst)
	if n.router.Gen() == memo.gen && n.epoch.Load() == memo.epoch {
		// Only cache results whose inputs were stable across the whole
		// computation; a concurrent failure change just skips the store.
		memo.m.Store(key, tr)
	}
	return tr
}

// trMemoFor returns the Traceroute memo for the current (routing
// generation, failure epoch), replacing a stale one if needed.
func (n *Net) trMemoFor() *trMemoT {
	gen := n.router.Gen()
	ep := n.epoch.Load()
	for {
		m := n.trMemo.Load()
		if m != nil && m.gen == gen && m.epoch == ep {
			return m
		}
		fresh := &trMemoT{gen: gen, epoch: ep}
		if n.trMemo.CompareAndSwap(m, fresh) {
			return fresh
		}
	}
}

func (n *Net) tracerouteUncached(srcASN topology.ASN, dst netx.Addr) Traceroute {
	n.mu.RLock()
	defer n.mu.RUnlock()

	tr := Traceroute{
		SrcASN:  srcASN,
		SrcAddr: n.HostAddr(srcASN, 0),
		DstAddr: dst,
	}
	// Peering LANs are unrouted; probing one directly succeeds only when
	// the source's upstream sits on that fabric.
	if x, isIXP := n.ixpByLAN.Lookup(dst); isIXP {
		return n.tracerouteToIXPLAN(srcASN, dst, x)
	}
	// Anycast destinations resolve to the policy-nearest instance.
	anycastDst := false
	var dstASN topology.ASN
	if svc := n.anycastFor(dst); svc != nil {
		origin, okA := n.anycastOrigin(srcASN, svc)
		if !okA {
			return tr
		}
		dstASN = origin
		anycastDst = true
	} else {
		var ok bool
		dstASN, ok = n.addrIndex.Lookup(dst)
		if !ok {
			return tr
		}
	}
	tr.DstASN = dstASN

	path, reachable := n.router.Path(srcASN, dstASN)
	if !reachable {
		return tr
	}

	ttl := 0
	var oneWay float64 // accumulated one-way latency
	lossPass := 1.0

	emit := func(addr netx.Addr, asn topology.ASN, link topology.LinkID, ixp topology.IXPID, respondProb float64) {
		ttl++
		h := TraceHop{TTL: ttl, TrueASN: asn, TrueLink: link, TrueIXP: ixp}
		if as := n.topo.ASes[asn]; as != nil {
			h.TrueCountry = as.Country
			if c, okC := geo.Lookup(as.Country); okC {
				h.TrueCoord = c.Hub
			}
		}
		if ixp != 0 {
			x := n.topo.IXPs[ixp]
			h.TrueCountry = x.Country
			if c, okC := geo.Lookup(x.Country); okC {
				h.TrueCoord = c.Hub
			}
		}
		r := float01(mix(n.seed, uint64(tr.SrcAddr), uint64(dst), uint64(ttl), 0xa1))
		if r < respondProb*lossPass {
			h.Addr = addr
			jitter := 0.9 + 0.2*float01(mix(n.seed, uint64(addr), uint64(ttl), 0xb2))
			h.RTT = (2*oneWay + 1.0) * jitter
		}
		tr.Hops = append(tr.Hops, h)
	}

	// First hop: source AS's edge router.
	srcAS := n.topo.ASes[srcASN]
	oneWay += 0.5
	emit(n.RouterAddr(srcASN, 0), srcASN, 0, 0, routerRespondProb(srcAS))

	for i := 1; i < len(path.Hops); i++ {
		hop := path.Hops[i]
		l := n.topo.Link(hop.Link)
		lms, lloss, up := n.linkLatency(l)
		if !up {
			break // physically dead mid-path (transient during reconvergence)
		}
		oneWay += lms
		lossPass *= 1 - lloss

		as := n.topo.ASes[hop.ASN]

		// Ingress interface of the next AS. Over an IXP fabric the
		// far-end router answers from its LAN address. Entering a stub
		// customer from its provider, the point-to-point interface is
		// numbered from the PROVIDER's space (the upstream assigns the
		// /30) — the classic IP-to-AS mapping pitfall that keeps stub
		// networks invisible to hop-based topology mapping.
		switch {
		case l.Via != 0:
			x := n.topo.IXPs[l.Via]
			lanAddr := x.LAN.Nth(uint64(2 + memberIndex(x, hop.ASN)))
			emit(lanAddr, hop.ASN, hop.Link, l.Via, routerRespondProb(as))
		case l.Kind == topology.CustomerProvider && l.A == hop.ASN &&
			as != nil && as.Tier == topology.TierStub:
			addr := n.RouterAddr(l.B, 40+int(hop.ASN)%20)
			emit(addr, hop.ASN, hop.Link, 0, routerRespondProb(as))
		default:
			emit(n.RouterAddr(hop.ASN, 1+i), hop.ASN, hop.Link, 0, routerRespondProb(as))
		}

		// A backbone hop inside transit networks.
		if as != nil && as.Type == topology.ASTransit && i != len(path.Hops)-1 {
			oneWay += 0.8
			emit(n.RouterAddr(hop.ASN, 7+i), hop.ASN, 0, 0, routerRespondProb(as))
		}
	}

	// Destination host.
	dstAS := n.topo.ASes[dstASN]
	if dstAS != nil {
		oneWay += 0.5
		ttl++
		h := TraceHop{TTL: ttl, TrueASN: dstASN, TrueCountry: dstAS.Country}
		if c, okC := geo.Lookup(dstAS.Country); okC {
			h.TrueCoord = c.Hub
		}
		// Anycast service addresses answer like production services do;
		// unicast addresses answer per the owner's responsiveness.
		responds := n.addrResponds(dst, dstAS)
		if anycastDst {
			responds = float01(mix(n.seed, uint64(dst), 0xa7)) < 0.95
		}
		if responds {
			r := float01(mix(n.seed, uint64(tr.SrcAddr), uint64(dst), uint64(ttl), 0xd4))
			if r < lossPass {
				h.Addr = dst
				jitter := 0.9 + 0.2*float01(mix(n.seed, uint64(dst), uint64(ttl), 0xe5))
				h.RTT = (2*oneWay + 1.0) * jitter
				tr.Reached = true
				tr.RTT = h.RTT
			}
		}
		tr.Hops = append(tr.Hops, h)
	}
	return tr
}

// tracerouteToIXPLAN handles probing an IXP LAN address directly: the LAN
// is unrouted globally, so the probe only succeeds when the source's own
// upstream path happens to touch that fabric. Must hold n.mu (read or
// write).
func (n *Net) tracerouteToIXPLAN(srcASN topology.ASN, dst netx.Addr, x topology.IXPID) Traceroute {
	tr := Traceroute{SrcASN: srcASN, SrcAddr: n.HostAddr(srcASN, 0), DstAddr: dst}
	ixp := n.topo.IXPs[x]

	// Reachable only if the fabric sits on the probe's default-route
	// path: the source itself is a member, or the probe's traffic to
	// this (unrouted) destination exits via a provider that is. A
	// multihomed source load-shares defaults per destination, so only
	// one provider is tried per target — probing a LAN does not fan out
	// across every upstream.
	member := func(a topology.ASN) bool {
		for _, m := range ixp.Members {
			if m == a {
				return true
			}
		}
		return false
	}
	var providers []topology.ASN
	for _, lid := range n.topo.LinksOf(srcASN) {
		l := n.topo.Link(lid)
		if l.Kind == topology.CustomerProvider && l.A == srcASN {
			providers = append(providers, l.B)
		}
	}
	candidates := []topology.ASN{srcASN}
	if len(providers) > 0 {
		candidates = append(candidates, providers[int(mix(n.seed, uint64(dst), 0x77)%uint64(len(providers)))])
	}
	for _, c := range candidates {
		if member(c) {
			ttl := 1
			tr.Hops = append(tr.Hops, TraceHop{
				TTL: ttl, Addr: n.RouterAddr(srcASN, 0), RTT: 1.2,
				TrueASN: srcASN, TrueCountry: n.topo.ASes[srcASN].Country,
			})
			tr.Hops = append(tr.Hops, TraceHop{
				TTL: ttl + 1, Addr: dst, RTT: 6.5, TrueASN: 0, TrueIXP: x,
				TrueCountry: ixp.Country,
			})
			tr.Reached = true
			tr.RTT = 6.5
			return tr
		}
	}
	return tr
}

func memberIndex(x *topology.IXP, a topology.ASN) int {
	for i, m := range x.Members {
		if m == a {
			return i
		}
	}
	return len(x.Members)
}

// routerRespondProb models ICMP generation policy by network type:
// mobile cores rate-limit aggressively; transit backbones respond.
func routerRespondProb(as *topology.AS) float64 {
	if as == nil {
		return 0.5
	}
	if as.Responsive == 0 {
		return 0.05 // dark network: routers drop ICMP too
	}
	switch as.Type {
	case topology.ASMobileCarrier:
		return 0.45
	case topology.ASTransit:
		return 0.92
	case topology.ASContent, topology.ASCloud:
		return 0.85
	default:
		return 0.8
	}
}

// addrResponds decides whether a specific address answers probes.
// Responsiveness is two-level, as in real address space: only some /24s
// are "live" (populated, not firewalled), and within a live /24 only
// some addresses answer. The AS's Responsive share is split between the
// two levels. This concentration is why single-sample scans (CAIDA/
// YARRP) miss networks that responsiveness-history hitlists (ANT) find:
// one random address per /24 usually lands on silence even inside a
// network that does have responsive hosts.
func (n *Net) addrResponds(a netx.Addr, as *topology.AS) bool {
	if as == nil || as.Responsive == 0 {
		return false
	}
	liveQ, rateR := liveSplit(as)
	p24 := uint64(a) >> 8
	if float01(mix(n.seed, p24, 0xf5)) >= liveQ {
		return false
	}
	return float01(mix(n.seed, uint64(a), 0xf6)) < rateR
}

// liveSplit maps an AS's responsiveness to (live-/24 share, per-address
// response rate inside a live /24).
func liveSplit(as *topology.AS) (liveQ, rateR float64) {
	switch as.Type {
	case topology.ASMobileCarrier:
		return 0.065, 0.35 // CGNAT pools: few gateways answer
	case topology.ASContent, topology.ASCloud:
		return 0.60, 0.70
	case topology.ASTransit:
		return 0.30, 0.50
	case topology.ASEducation:
		return 0.20, 0.30
	default:
		return 0.12, 0.25
	}
}

// AddrResponds exposes the per-address responsiveness oracle (used by
// hitlist construction, which models historical scanning campaigns).
func (n *Net) AddrResponds(a netx.Addr) bool {
	asn, ok := n.addrIndex.Lookup(a)
	if !ok {
		return false
	}
	return n.addrResponds(a, n.topo.ASes[asn])
}

// Ping measures RTT to dst; ok is false when unreachable or lost.
func (n *Net) Ping(srcASN topology.ASN, dst netx.Addr) (float64, bool) {
	tr := n.Traceroute(srcASN, dst)
	return tr.RTT, tr.Reached
}

// PathQuality returns the AS-to-AS round-trip latency and compound loss
// probability along the current forwarding path. ok is false when no
// path exists (or a link on it is physically dead mid-reconvergence).
// Results are a pure function of (routing generation, failure epoch,
// src, dst) and are memoized on that key — outage sweeps re-ask the same
// pairs for every event.
func (n *Net) PathQuality(src, dst topology.ASN) (rtt, loss float64, ok bool) {
	if src == dst {
		return 2.0, 0, true
	}
	memo := n.pqMemoFor()
	key := uint64(src)<<32 | uint64(dst)
	if memo != nil {
		if v, okM := memo.m.Load(key); okM {
			e := v.(pqVal)
			return e.rtt, e.loss, e.ok
		}
	}
	rtt, loss, ok = n.pathQualityUncached(src, dst)
	if memo != nil && n.router.Gen() == memo.gen && n.epoch.Load() == memo.epoch {
		// Only cache results whose inputs were stable across the whole
		// computation; a concurrent failure change just skips the store.
		memo.m.Store(key, pqVal{rtt: rtt, loss: loss, ok: ok})
	}
	return rtt, loss, ok
}

// pqMemoFor returns the PathQuality memo for the current (routing
// generation, failure epoch), replacing a stale one if needed.
func (n *Net) pqMemoFor() *pqMemoT {
	gen := n.router.Gen()
	ep := n.epoch.Load()
	for {
		m := n.pqMemo.Load()
		if m != nil && m.gen == gen && m.epoch == ep {
			return m
		}
		fresh := &pqMemoT{gen: gen, epoch: ep}
		if n.pqMemo.CompareAndSwap(m, fresh) {
			return fresh
		}
	}
}

func (n *Net) pathQualityUncached(src, dst topology.ASN) (rtt, loss float64, ok bool) {
	path, okPath := n.router.Path(src, dst)
	if !okPath {
		return 0, 1, false
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	oneWay := 1.0
	pass := 1.0
	for i := 1; i < len(path.Hops); i++ {
		l := n.topo.Link(path.Hops[i].Link)
		ms, lloss, up := n.linkLatency(l)
		if !up {
			return 0, 1, false
		}
		oneWay += ms + 0.3
		pass *= 1 - lloss
	}
	return 2 * oneWay, 1 - pass, true
}

// LossBudget is the compound loss above which interactive transports
// effectively fail (timeouts dominate); the DNS and content layers use
// it to turn congestion into failures.
const LossBudget = 0.5

// RTTBetween returns the AS-to-AS round-trip latency along the current
// forwarding path. It reports ok=false when the path is down or so
// congested (compound loss above LossBudget) that transports time out —
// the over-subscribed-backup failure mode of Section 4.1.
func (n *Net) RTTBetween(src, dst topology.ASN) (float64, bool) {
	rtt, loss, ok := n.PathQuality(src, dst)
	if !ok || loss > LossBudget {
		return 0, false
	}
	return rtt, true
}
