package netsim

import (
	"sort"

	"github.com/afrinet/observatory/internal/netx"
	"github.com/afrinet/observatory/internal/topology"
)

// Anycast support: a service prefix announced simultaneously from
// several origin networks. BGP routes each source to its
// policy-nearest origin, so probes from different vantages land on
// different instances — the behaviour MAnycast-style censuses detect
// (Section 7.2 lists anycast research among the observatory's intended
// workloads).

// anycastService is one announced service.
type anycastService struct {
	prefix  netx.Prefix
	origins []topology.ASN
}

// AnnounceAnycast registers a service prefix announced by all origins.
// The prefix must not collide with allocated unicast space or exchange
// LANs; origins must exist. Announcements persist until the Net is
// discarded.
func (n *Net) AnnounceAnycast(p netx.Prefix, origins []topology.ASN) {
	n.mu.Lock()
	defer n.mu.Unlock()
	os := append([]topology.ASN(nil), origins...)
	sort.Slice(os, func(i, j int) bool { return os[i] < os[j] })
	n.anycast = append(n.anycast, anycastService{prefix: p, origins: os})
}

// anycastFor returns the service covering addr, if any. Must hold n.mu
// (read or write).
func (n *Net) anycastFor(a netx.Addr) *anycastService {
	for i := range n.anycast {
		if n.anycast[i].prefix.Contains(a) {
			return &n.anycast[i]
		}
	}
	return nil
}

// anycastOrigin picks the instance BGP would deliver src's packets to:
// the origin with the best (shortest, tie-broken lowest-ASN) policy
// route from src. Must hold n.mu (read or write); uses the router's own
// locking.
func (n *Net) anycastOrigin(src topology.ASN, svc *anycastService) (topology.ASN, bool) {
	best := topology.ASN(0)
	bestLen := 1 << 30
	for _, o := range svc.origins {
		path, ok := n.router.Path(src, o)
		if !ok {
			continue
		}
		if path.Len() < bestLen || (path.Len() == bestLen && o < best) {
			best, bestLen = o, path.Len()
		}
	}
	return best, best != 0
}

// AnycastInstanceFor exposes the instance selection (ground truth for
// census evaluation).
func (n *Net) AnycastInstanceFor(src topology.ASN, a netx.Addr) (topology.ASN, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	svc := n.anycastFor(a)
	if svc == nil {
		return 0, false
	}
	return n.anycastOrigin(src, svc)
}

// IsAnycast reports whether addr falls in an announced anycast prefix.
func (n *Net) IsAnycast(a netx.Addr) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.anycastFor(a) != nil
}
