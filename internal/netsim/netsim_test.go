package netsim

import (
	"testing"

	"github.com/afrinet/observatory/internal/bgp"
	"github.com/afrinet/observatory/internal/topology"
)

// one shared world per test binary; netsim tests mutate failures and must
// restore them.
var (
	testTopo   = topology.Generate(topology.DefaultParams())
	testRouter = bgp.New(testTopo)
	testNet    = New(testTopo, testRouter, 42)
)

const kigali = topology.ASN(36924)

func cdnASN(t *testing.T) topology.ASN {
	t.Helper()
	for _, a := range testTopo.ASNs() {
		if testTopo.ASes[a].Name == "GlobalCDN-A" {
			return a
		}
	}
	t.Fatal("GlobalCDN-A missing")
	return 0
}

func TestTracerouteDeterminism(t *testing.T) {
	dst := testNet.RouterAddr(cdnASN(t), 0)
	a := testNet.Traceroute(kigali, dst)
	b := testNet.Traceroute(kigali, dst)
	if len(a.Hops) != len(b.Hops) || a.Reached != b.Reached || a.RTT != b.RTT {
		t.Fatal("traceroute is not deterministic")
	}
	for i := range a.Hops {
		if a.Hops[i].Addr != b.Hops[i].Addr || a.Hops[i].RTT != b.Hops[i].RTT {
			t.Fatalf("hop %d differs", i)
		}
	}
}

func TestTracerouteTTLsAscend(t *testing.T) {
	tr := testNet.Traceroute(kigali, testNet.RouterAddr(cdnASN(t), 0))
	for i := 1; i < len(tr.Hops); i++ {
		if tr.Hops[i].TTL != tr.Hops[i-1].TTL+1 {
			t.Fatalf("TTLs not consecutive at %d", i)
		}
	}
}

func TestTracerouteMatchesBGPPath(t *testing.T) {
	dstASN := cdnASN(t)
	tr := testNet.Traceroute(kigali, testNet.RouterAddr(dstASN, 0))
	want, ok := testRouter.Path(kigali, dstASN)
	if !ok {
		t.Fatal("no BGP path")
	}
	got := tr.ASPath()
	wantASNs := want.ASNs()
	// The traceroute's true AS sequence must be a prefix-preserving
	// subsequence of the BGP path (every traced AS in order).
	j := 0
	for _, a := range got {
		for j < len(wantASNs) && wantASNs[j] != a {
			j++
		}
		if j == len(wantASNs) {
			t.Fatalf("traced AS %d not on BGP path %v (traced %v)", a, wantASNs, got)
		}
	}
}

func TestIXPLANHopAppears(t *testing.T) {
	// Find a peering link over an African fabric and traceroute across
	// it from one endpoint to the other.
	for i := range testTopo.Links {
		l := &testTopo.Links[i]
		if l.Via == 0 || l.Kind != topology.PeerPeer {
			continue
		}
		tr := testNet.Traceroute(l.A, testNet.RouterAddr(l.B, 0))
		found := false
		for _, h := range tr.Hops {
			if h.TrueIXP == l.Via {
				found = true
				if h.Addr != 0 {
					if x, ok := testNet.IXPOf(h.Addr); !ok || x != l.Via {
						t.Fatalf("LAN hop address %v does not map back to IXP %d", h.Addr, l.Via)
					}
				}
			}
		}
		if found {
			return // one positive case suffices
		}
	}
	t.Fatal("no traceroute crossed an exchange LAN")
}

func TestOwnerOfRoundTrip(t *testing.T) {
	for _, a := range []topology.ASN{kigali, cdnASN(t)} {
		addr := testNet.HostAddr(a, 3)
		owner, ok := testNet.OwnerOf(addr)
		if !ok || owner != a {
			t.Fatalf("OwnerOf(%v) = %d,%v want %d", addr, owner, ok, a)
		}
	}
}

func TestPingConsistentWithTraceroute(t *testing.T) {
	dst := testNet.RouterAddr(cdnASN(t), 0)
	rtt, ok := testNet.Ping(kigali, dst)
	tr := testNet.Traceroute(kigali, dst)
	if ok != tr.Reached || (ok && rtt != tr.RTT) {
		t.Fatal("ping and traceroute disagree")
	}
}

func TestPathQualityBounds(t *testing.T) {
	asns := testTopo.ASNs()
	for i := 0; i < len(asns); i += 37 {
		for j := 11; j < len(asns); j += 53 {
			rtt, loss, ok := testNet.PathQuality(asns[i], asns[j])
			if !ok {
				continue
			}
			if rtt < 0 || loss < 0 || loss > 1 {
				t.Fatalf("quality out of bounds: rtt=%v loss=%v", rtt, loss)
			}
		}
	}
}

func TestRTTScalesWithDistance(t *testing.T) {
	// Kigali to a Kenyan network should be much faster than Kigali to a
	// US network.
	var ke, us topology.ASN
	for _, a := range testTopo.ASNs() {
		as := testTopo.ASes[a]
		if ke == 0 && as.Country == "KE" && as.Type == topology.ASFixedISP {
			ke = a
		}
		if us == 0 && as.Country == "US" && as.Type == topology.ASTransit && as.Tier == topology.Tier1 {
			us = a
		}
	}
	rttKE, ok1 := testNet.RTTBetween(kigali, ke)
	rttUS, ok2 := testNet.RTTBetween(kigali, us)
	if !ok1 || !ok2 {
		t.Fatal("unreachable")
	}
	if rttKE >= rttUS {
		t.Fatalf("RTT Kigali->KE (%.1f) should be < Kigali->US (%.1f)", rttKE, rttUS)
	}
}

func TestCableCutAndRestore(t *testing.T) {
	defer testNet.RestoreAll()
	// Baseline quality for a Nigerian eyeball to Europe.
	var ng topology.ASN
	for _, a := range testTopo.ASesIn("NG") {
		if testTopo.ASes[a].Type == topology.ASFixedISP {
			ng = a
			break
		}
	}
	var eu topology.ASN
	for _, a := range testTopo.ASesIn("DE") {
		if testTopo.ASes[a].Type == topology.ASTransit {
			eu = a
			break
		}
	}
	rttBefore, lossBefore, ok := testNet.PathQuality(ng, eu)
	if !ok {
		t.Fatal("NG->DE unreachable at baseline")
	}

	// Cut the whole west corridor.
	for _, id := range testTopo.Corridors()["west-africa-coastal"] {
		testNet.CutCable(id)
	}
	if got := len(testNet.CutCables()); got == 0 {
		t.Fatal("no cables recorded as cut")
	}
	rttAfter, lossAfter, okAfter := testNet.PathQuality(ng, eu)
	degraded := !okAfter || lossAfter > lossBefore+0.01 || rttAfter > rttBefore*1.2
	if !degraded {
		t.Fatalf("corridor cut had no effect: before (%.1fms, %.2f) after (%.1fms, %.2f)",
			rttBefore, lossBefore, rttAfter, lossAfter)
	}

	testNet.RestoreAll()
	rttRestored, lossRestored, okRestored := testNet.PathQuality(ng, eu)
	if !okRestored || rttRestored != rttBefore || lossRestored != lossBefore {
		t.Fatal("RestoreAll did not return to baseline")
	}
}

func TestCutCableIdempotent(t *testing.T) {
	defer testNet.RestoreAll()
	id := testTopo.CableIDs()[0]
	testNet.CutCable(id)
	testNet.CutCable(id) // second cut is a no-op
	if len(testNet.CutCables()) != 1 {
		t.Fatal("double cut recorded twice")
	}
	testNet.RestoreCable(id)
	if len(testNet.CutCables()) != 0 {
		t.Fatal("restore failed")
	}
	testNet.RestoreCable(id) // restoring an intact cable is a no-op
}

func TestLANProbeRequiresFabricPresence(t *testing.T) {
	// The Kigali probe's fabric (RINEX) answers; a far-away fabric its
	// default route cannot touch does not.
	var rinex, far topology.IXPID
	for _, id := range testTopo.IXPIDs() {
		x := testTopo.IXPs[id]
		if x.Name == "RINEX" {
			rinex = id
		}
		if x.Country == "CL" {
			far = id
		}
	}
	if rinex == 0 || far == 0 {
		t.Fatal("fixture fabrics missing")
	}
	trNear := testNet.Traceroute(kigali, testTopo.IXPs[rinex].LAN.Nth(2))
	if !trNear.Reached {
		t.Fatal("RINEX LAN should answer the Kigali probe (member network)")
	}
	trFar := testNet.Traceroute(kigali, testTopo.IXPs[far].LAN.Nth(2))
	if trFar.Reached {
		t.Fatal("a Chilean fabric must not answer a Kigali default-route probe")
	}
}

func TestAddrRespondsConcentration(t *testing.T) {
	// Responsiveness concentrates in live /24s: find a mobile AS and
	// check that responding addresses cluster in a minority of /24s.
	var mob *topology.AS
	for _, a := range testTopo.ASNs() {
		as := testTopo.ASes[a]
		if as.Type == topology.ASMobileCarrier && as.Responsive > 0 {
			mob = as
			break
		}
	}
	live := 0
	total := 0
	for _, s := range mob.Prefixes[0].Subnets(24, 0) {
		total++
		respond := 0
		for i := uint64(1); i < 255; i += 16 {
			if testNet.AddrResponds(s.Nth(i)) {
				respond++
			}
		}
		if respond > 0 {
			live++
		}
	}
	if live == 0 {
		t.Skip("this mobile AS drew no live /24s in its first /20")
	}
	if float64(live)/float64(total) > 0.5 {
		t.Fatalf("mobile space too responsive: %d/%d live /24s", live, total)
	}
}

func TestTracerouteToUnknownAddress(t *testing.T) {
	tr := testNet.Traceroute(kigali, 1) // 0.0.0.1 — unrouted, not a LAN
	if tr.Reached || len(tr.Hops) != 0 {
		t.Fatal("unrouted target should produce an empty trace")
	}
}
