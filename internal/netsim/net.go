// Package netsim is the data plane of the synthetic Internet: it expands
// BGP AS-level paths into router-level traceroutes with realistic
// addressing (including IXP peering-LAN hops), models latency from the
// physical realization of each link over cables and terrestrial routes,
// and applies failures (cable cuts) with re-realization, congestion, and
// loss — the dynamics behind the paper's outage analysis.
package netsim

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/afrinet/observatory/internal/bgp"
	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/netx"
	"github.com/afrinet/observatory/internal/topology"
)

// latVal is a memoized linkLatency result, valid for one failure epoch.
type latVal struct {
	ms, loss float64
	up       bool
}

// latMemoT holds the per-epoch link-latency memo. reRealize swaps in a
// fresh one, so entries are only ever read in the epoch they were
// computed for.
type latMemoT struct{ m sync.Map } // topology.LinkID -> latVal

// pqVal is a memoized PathQuality result.
type pqVal struct {
	rtt, loss float64
	ok        bool
}

// pqMemoT holds PathQuality results valid for one (router generation,
// failure epoch) pair; any state change makes the whole memo stale.
type pqMemoT struct {
	gen, epoch uint64
	m          sync.Map // src<<32|dst -> pqVal
}

// trKey identifies one traceroute query.
type trKey struct {
	src topology.ASN
	dst netx.Addr
}

// trMemoT holds Traceroute results valid for one (router generation,
// failure epoch) pair. Memoized traceroutes share their Hops slice;
// every consumer treats Traceroute as read-only (the wire layer copies
// into its own HopRecord format).
type trMemoT struct {
	gen, epoch uint64
	m          sync.Map // trKey -> Traceroute
}

// Net is a simulated data plane over a topology and its routing.
type Net struct {
	topo   *topology.Topology
	router *bgp.Router
	seed   uint64

	// epoch increments on every re-realization (failure-state change);
	// derived caches are keyed by it.
	epoch   atomic.Uint64
	latMemo atomic.Pointer[latMemoT]
	pqMemo  atomic.Pointer[pqMemoT]
	trMemo  atomic.Pointer[trMemoT]

	// mu is read-mostly: measurement reads (traceroute, path quality,
	// link state) take the read lock and run concurrently; failure
	// changes (cable cuts/restores) take the write lock.
	mu sync.RWMutex
	// conduitDown marks failed physical segments (by cable cuts).
	conduitDown map[topology.ConduitID]bool
	// cutCables tracks which cables are currently cut.
	cutCables map[topology.CableID]bool
	// repath caches re-realized physical paths for links whose default
	// realization crosses a failed conduit. A nil entry means the link
	// is physically down.
	repath map[topology.LinkID][]topology.Segment
	// loads counts links realized over each conduit (for congestion).
	loads map[topology.ConduitID]int
	// addrIndex maps addresses back to owning AS (including IXP LANs).
	addrIndex *netx.Trie[topology.ASN]
	ixpByLAN  *netx.Trie[topology.IXPID]
	// anycast services (see anycast.go).
	anycast []anycastService
}

// New builds a data plane with all conduits up. The seed drives all
// per-event randomness (jitter, response probabilities).
func New(t *topology.Topology, r *bgp.Router, seed int64) *Net {
	n := &Net{
		topo:        t,
		router:      r,
		seed:        uint64(seed),
		conduitDown: make(map[topology.ConduitID]bool),
		cutCables:   make(map[topology.CableID]bool),
		repath:      make(map[topology.LinkID][]topology.Segment),
		addrIndex:   &netx.Trie[topology.ASN]{},
		ixpByLAN:    &netx.Trie[topology.IXPID]{},
	}
	n.latMemo.Store(&latMemoT{})
	for _, asn := range t.ASNs() {
		for _, p := range t.ASes[asn].Prefixes {
			n.addrIndex.Insert(p, asn)
		}
	}
	for _, id := range t.IXPIDs() {
		n.ixpByLAN.Insert(t.IXPs[id].LAN, id)
	}
	n.recomputeLoads()
	return n
}

// Topology returns the underlying topology.
func (n *Net) Topology() *topology.Topology { return n.topo }

// Epoch returns the failure epoch: it increments on every state change
// that re-realized the network (cable cut/restore). Together with the
// router's Gen it keys any cache derived from data-plane state.
func (n *Net) Epoch() uint64 { return n.epoch.Load() }

// Router returns the underlying routing engine.
func (n *Net) Router() *bgp.Router { return n.router }

// OwnerOf maps an address to the AS owning its covering prefix.
func (n *Net) OwnerOf(a netx.Addr) (topology.ASN, bool) { return n.addrIndex.Lookup(a) }

// IXPOf maps an address to the IXP whose peering LAN contains it.
func (n *Net) IXPOf(a netx.Addr) (topology.IXPID, bool) { return n.ixpByLAN.Lookup(a) }

// HostAddr returns the i-th host address inside an AS (i small).
func (n *Net) HostAddr(asn topology.ASN, i int) netx.Addr {
	as := n.topo.ASes[asn]
	if as == nil || len(as.Prefixes) == 0 {
		return 0
	}
	p := as.Prefixes[i%len(as.Prefixes)]
	return p.Nth(uint64(256 + i))
}

// RouterAddr returns the address of one of an AS's backbone routers.
func (n *Net) RouterAddr(asn topology.ASN, i int) netx.Addr {
	as := n.topo.ASes[asn]
	if as == nil || len(as.Prefixes) == 0 {
		return 0
	}
	return as.Prefixes[0].Nth(uint64(1 + i%64))
}

// --- Failures ---------------------------------------------------------

// CutCable fails every segment of the cable and recomputes link
// realizations and routing.
func (n *Net) CutCable(id topology.CableID) {
	n.SetCablesCut([]topology.CableID{id}, true)
}

// RestoreCable repairs the cable's segments.
func (n *Net) RestoreCable(id topology.CableID) {
	n.SetCablesCut([]topology.CableID{id}, false)
}

// SetCablesCut cuts (or restores) a whole batch of cables with a single
// re-realization — one routing invalidation instead of one per cable.
// Cables already in the requested state are skipped; if nothing changes
// the call is a no-op and every cache survives.
func (n *Net) SetCablesCut(ids []topology.CableID, cut bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	changed := false
	for _, id := range ids {
		if n.cutCables[id] == cut {
			continue
		}
		changed = true
		if cut {
			n.cutCables[id] = true
		} else {
			delete(n.cutCables, id)
		}
	}
	if !changed {
		return
	}
	n.syncConduitsLocked()
	n.reRealize()
}

// RestoreAll repairs everything.
func (n *Net) RestoreAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.cutCables) == 0 && len(n.conduitDown) == 0 {
		return
	}
	n.cutCables = make(map[topology.CableID]bool)
	n.conduitDown = make(map[topology.ConduitID]bool)
	n.reRealize()
}

// syncConduitsLocked rederives the failed-conduit set from the cut
// cables. Must be called with n.mu held for writing.
func (n *Net) syncConduitsLocked() {
	down := make(map[topology.ConduitID]bool)
	for i := range n.topo.Conduits {
		c := &n.topo.Conduits[i]
		if n.cutCables[c.Cable] {
			down[c.ID] = true
		}
	}
	n.conduitDown = down
}

// CutCables returns the currently-cut cables, sorted.
func (n *Net) CutCables() []topology.CableID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]topology.CableID, 0, len(n.cutCables))
	for id := range n.cutCables {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// reRealize recomputes effective physical paths for all links after a
// failure change, and feeds physically-dead links to the BGP layer.
// Must be called with n.mu held for writing.
func (n *Net) reRealize() {
	n.repath = make(map[topology.LinkID][]topology.Segment)
	up := func(id topology.ConduitID) bool { return !n.conduitDown[id] }
	realizer := topology.NewRealizer(n.topo, up)
	var dead []topology.LinkID
	for i := range n.topo.Links {
		l := &n.topo.Links[i]
		uses := false
		for _, s := range l.Path {
			if n.conduitDown[s.Conduit] {
				uses = true
				break
			}
		}
		if !uses {
			continue // default path intact
		}
		segs, ok := topology.RealizeLink(realizer, n.topo, l)
		if !ok {
			n.repath[l.ID] = nil
			dead = append(dead, l.ID)
			continue
		}
		n.repath[l.ID] = segs
	}
	// Apply to routing: exactly the physically-dead links are down. The
	// whole-set form is a no-op on the router (cached trees survive)
	// when the dead set did not change.
	n.router.SetDownLinks(dead)
	n.recomputeLoads()
	n.epoch.Add(1)
	n.latMemo.Store(&latMemoT{})
}

// effectivePath returns the link's current physical realization and
// whether the link is up. Must be called with n.mu held (read or write).
func (n *Net) effectivePath(l *topology.Link) ([]topology.Segment, bool) {
	if segs, ok := n.repath[l.ID]; ok {
		return segs, segs != nil
	}
	return l.Path, true
}

// recomputeLoads counts how many links ride each conduit. Must be called
// with n.mu held for writing.
func (n *Net) recomputeLoads() {
	loads := make(map[topology.ConduitID]int)
	for i := range n.topo.Links {
		l := &n.topo.Links[i]
		segs, okUp := n.effectivePath(l)
		if !okUp {
			continue
		}
		for _, s := range segs {
			loads[s.Conduit]++
		}
	}
	n.loads = loads
}

// conduitPenalty returns added one-way delay (ms) and loss probability
// for one conduit under current load. A conduit carrying more links than
// its capacity is congested — the "over-subscribed backup" effect the
// paper describes during cable cuts.
func (n *Net) conduitPenalty(id topology.ConduitID) (delayMs, loss float64) {
	c := n.topo.ConduitByID(id)
	if c == nil || c.Capacity <= 0 {
		return 0, 0
	}
	ratio := float64(n.loads[id]) / c.Capacity
	if ratio <= 1 {
		return 0, 0
	}
	over := ratio - 1
	delayMs = 40 * over
	if delayMs > 200 {
		delayMs = 200
	}
	loss = 0.5 * over
	if loss > 0.9 {
		loss = 0.9
	}
	return delayMs, loss
}

// LinkUp reports whether a link currently has a physical realization.
func (n *Net) LinkUp(id topology.LinkID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	segs, ok := n.repath[id]
	if !ok {
		return true
	}
	return segs != nil
}

// CablesOnLink returns the cables carrying the link's *current*
// realization (ground truth for cable-inference experiments).
func (n *Net) CablesOnLink(id topology.LinkID) []topology.CableID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	l := n.topo.Link(id)
	segs, up := n.effectivePath(l)
	if !up {
		return nil
	}
	seen := map[topology.CableID]bool{}
	var out []topology.CableID
	for _, s := range segs {
		c := n.topo.ConduitByID(s.Conduit)
		if c != nil && c.IsSubsea() && !seen[c.Cable] {
			seen[c.Cable] = true
			out = append(out, c.Cable)
		}
	}
	return out
}

// linkLatency returns the one-way propagation+processing delay and the
// compound congestion loss for a link under current conditions. Results
// are memoized per failure epoch (the inputs — repath, loads,
// conduitDown — only change inside reRealize, which swaps the memo).
// Must be called with n.mu held (read or write).
func (n *Net) linkLatency(l *topology.Link) (ms float64, loss float64, up bool) {
	memo := n.latMemo.Load()
	if v, ok := memo.m.Load(l.ID); ok {
		e := v.(latVal)
		return e.ms, e.loss, e.up
	}
	ms, loss, up = n.linkLatencyUncached(l)
	memo.m.Store(l.ID, latVal{ms: ms, loss: loss, up: up})
	return ms, loss, up
}

func (n *Net) linkLatencyUncached(l *topology.Link) (ms float64, loss float64, up bool) {
	segs, okUp := n.effectivePath(l)
	if !okUp {
		return 0, 1, false
	}
	var km float64
	if len(segs) == 0 {
		switch {
		case l.Via != 0:
			km = 20 // both ports at the exchange: metro cross-connect
		default:
			a, b := n.topo.Country(l.A), n.topo.Country(l.B)
			if a != nil && b != nil && a.ISO2 != b.ISO2 {
				km = geo.DistanceKm(a.Hub, b.Hub) * 1.4
			} else {
				km = 150 // domestic metro haul
			}
		}
	}
	pass := 1.0
	for _, s := range segs {
		km += s.KM
		d, p := n.conduitPenalty(s.Conduit)
		ms += d
		pass *= 1 - p
	}
	ms += geo.PropagationDelayMs(km)
	return ms, 1 - pass, true
}
