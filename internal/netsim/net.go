// Package netsim is the data plane of the synthetic Internet: it expands
// BGP AS-level paths into router-level traceroutes with realistic
// addressing (including IXP peering-LAN hops), models latency from the
// physical realization of each link over cables and terrestrial routes,
// and applies failures (cable cuts) with re-realization, congestion, and
// loss — the dynamics behind the paper's outage analysis.
package netsim

import (
	"sort"
	"sync"

	"github.com/afrinet/observatory/internal/bgp"
	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/netx"
	"github.com/afrinet/observatory/internal/topology"
)

// Net is a simulated data plane over a topology and its routing.
type Net struct {
	topo   *topology.Topology
	router *bgp.Router
	seed   uint64

	mu sync.Mutex
	// conduitDown marks failed physical segments (by cable cuts).
	conduitDown map[topology.ConduitID]bool
	// cutCables tracks which cables are currently cut.
	cutCables map[topology.CableID]bool
	// repath caches re-realized physical paths for links whose default
	// realization crosses a failed conduit. A nil entry means the link
	// is physically down.
	repath map[topology.LinkID][]topology.Segment
	// loads counts links realized over each conduit (for congestion).
	loads map[topology.ConduitID]int
	// addrIndex maps addresses back to owning AS (including IXP LANs).
	addrIndex *netx.Trie[topology.ASN]
	ixpByLAN  *netx.Trie[topology.IXPID]
	// anycast services (see anycast.go).
	anycast []anycastService
}

// New builds a data plane with all conduits up. The seed drives all
// per-event randomness (jitter, response probabilities).
func New(t *topology.Topology, r *bgp.Router, seed int64) *Net {
	n := &Net{
		topo:        t,
		router:      r,
		seed:        uint64(seed),
		conduitDown: make(map[topology.ConduitID]bool),
		cutCables:   make(map[topology.CableID]bool),
		repath:      make(map[topology.LinkID][]topology.Segment),
		addrIndex:   &netx.Trie[topology.ASN]{},
		ixpByLAN:    &netx.Trie[topology.IXPID]{},
	}
	for _, asn := range t.ASNs() {
		for _, p := range t.ASes[asn].Prefixes {
			n.addrIndex.Insert(p, asn)
		}
	}
	for _, id := range t.IXPIDs() {
		n.ixpByLAN.Insert(t.IXPs[id].LAN, id)
	}
	n.recomputeLoads()
	return n
}

// Topology returns the underlying topology.
func (n *Net) Topology() *topology.Topology { return n.topo }

// Router returns the underlying routing engine.
func (n *Net) Router() *bgp.Router { return n.router }

// OwnerOf maps an address to the AS owning its covering prefix.
func (n *Net) OwnerOf(a netx.Addr) (topology.ASN, bool) { return n.addrIndex.Lookup(a) }

// IXPOf maps an address to the IXP whose peering LAN contains it.
func (n *Net) IXPOf(a netx.Addr) (topology.IXPID, bool) { return n.ixpByLAN.Lookup(a) }

// HostAddr returns the i-th host address inside an AS (i small).
func (n *Net) HostAddr(asn topology.ASN, i int) netx.Addr {
	as := n.topo.ASes[asn]
	if as == nil || len(as.Prefixes) == 0 {
		return 0
	}
	p := as.Prefixes[i%len(as.Prefixes)]
	return p.Nth(uint64(256 + i))
}

// RouterAddr returns the address of one of an AS's backbone routers.
func (n *Net) RouterAddr(asn topology.ASN, i int) netx.Addr {
	as := n.topo.ASes[asn]
	if as == nil || len(as.Prefixes) == 0 {
		return 0
	}
	return as.Prefixes[0].Nth(uint64(1 + i%64))
}

// --- Failures ---------------------------------------------------------

// CutCable fails every segment of the cable and recomputes link
// realizations and routing.
func (n *Net) CutCable(id topology.CableID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cutCables[id] {
		return
	}
	n.cutCables[id] = true
	for i := range n.topo.Conduits {
		c := &n.topo.Conduits[i]
		if c.Cable == id {
			n.conduitDown[c.ID] = true
		}
	}
	n.reRealize()
}

// RestoreCable repairs the cable's segments.
func (n *Net) RestoreCable(id topology.CableID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.cutCables[id] {
		return
	}
	delete(n.cutCables, id)
	for i := range n.topo.Conduits {
		c := &n.topo.Conduits[i]
		if c.Cable == id {
			delete(n.conduitDown, c.ID)
		}
	}
	n.reRealize()
}

// RestoreAll repairs everything.
func (n *Net) RestoreAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cutCables = make(map[topology.CableID]bool)
	n.conduitDown = make(map[topology.ConduitID]bool)
	n.reRealize()
}

// CutCables returns the currently-cut cables, sorted.
func (n *Net) CutCables() []topology.CableID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]topology.CableID, 0, len(n.cutCables))
	for id := range n.cutCables {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// reRealize recomputes effective physical paths for all links after a
// failure change, and feeds physically-dead links to the BGP layer.
// Must be called with n.mu held.
func (n *Net) reRealize() {
	n.repath = make(map[topology.LinkID][]topology.Segment)
	up := func(id topology.ConduitID) bool { return !n.conduitDown[id] }
	realizer := topology.NewRealizer(n.topo, up)
	var dead []topology.LinkID
	for i := range n.topo.Links {
		l := &n.topo.Links[i]
		uses := false
		for _, s := range l.Path {
			if n.conduitDown[s.Conduit] {
				uses = true
				break
			}
		}
		if !uses {
			continue // default path intact
		}
		segs, ok := topology.RealizeLink(realizer, n.topo, l)
		if !ok {
			n.repath[l.ID] = nil
			dead = append(dead, l.ID)
			continue
		}
		n.repath[l.ID] = segs
	}
	// Apply to routing: exactly the physically-dead links are down.
	n.router.ResetFailures()
	if len(dead) > 0 {
		n.router.SetLinksDown(dead, true)
	}
	n.recomputeLoads()
}

// effectivePath returns the link's current physical realization and
// whether the link is up. Must be called with n.mu held.
func (n *Net) effectivePath(l *topology.Link) ([]topology.Segment, bool) {
	if segs, ok := n.repath[l.ID]; ok {
		return segs, segs != nil
	}
	return l.Path, true
}

// recomputeLoads counts how many links ride each conduit. Must be called
// with n.mu held.
func (n *Net) recomputeLoads() {
	loads := make(map[topology.ConduitID]int)
	for i := range n.topo.Links {
		l := &n.topo.Links[i]
		segs, okUp := n.effectivePath(l)
		if !okUp {
			continue
		}
		for _, s := range segs {
			loads[s.Conduit]++
		}
	}
	n.loads = loads
}

// conduitPenalty returns added one-way delay (ms) and loss probability
// for one conduit under current load. A conduit carrying more links than
// its capacity is congested — the "over-subscribed backup" effect the
// paper describes during cable cuts.
func (n *Net) conduitPenalty(id topology.ConduitID) (delayMs, loss float64) {
	c := n.topo.ConduitByID(id)
	if c == nil || c.Capacity <= 0 {
		return 0, 0
	}
	ratio := float64(n.loads[id]) / c.Capacity
	if ratio <= 1 {
		return 0, 0
	}
	over := ratio - 1
	delayMs = 40 * over
	if delayMs > 200 {
		delayMs = 200
	}
	loss = 0.5 * over
	if loss > 0.9 {
		loss = 0.9
	}
	return delayMs, loss
}

// LinkUp reports whether a link currently has a physical realization.
func (n *Net) LinkUp(id topology.LinkID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	segs, ok := n.repath[id]
	if !ok {
		return true
	}
	return segs != nil
}

// CablesOnLink returns the cables carrying the link's *current*
// realization (ground truth for cable-inference experiments).
func (n *Net) CablesOnLink(id topology.LinkID) []topology.CableID {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.topo.Link(id)
	segs, up := n.effectivePath(l)
	if !up {
		return nil
	}
	seen := map[topology.CableID]bool{}
	var out []topology.CableID
	for _, s := range segs {
		c := n.topo.ConduitByID(s.Conduit)
		if c != nil && c.IsSubsea() && !seen[c.Cable] {
			seen[c.Cable] = true
			out = append(out, c.Cable)
		}
	}
	return out
}

// linkLatency returns the one-way propagation+processing delay and the
// compound congestion loss for a link under current conditions.
// Must be called with n.mu held.
func (n *Net) linkLatency(l *topology.Link) (ms float64, loss float64, up bool) {
	segs, okUp := n.effectivePath(l)
	if !okUp {
		return 0, 1, false
	}
	var km float64
	if len(segs) == 0 {
		switch {
		case l.Via != 0:
			km = 20 // both ports at the exchange: metro cross-connect
		default:
			a, b := n.topo.Country(l.A), n.topo.Country(l.B)
			if a != nil && b != nil && a.ISO2 != b.ISO2 {
				km = geo.DistanceKm(a.Hub, b.Hub) * 1.4
			} else {
				km = 150 // domestic metro haul
			}
		}
	}
	pass := 1.0
	for _, s := range segs {
		km += s.KM
		d, p := n.conduitPenalty(s.Conduit)
		ms += d
		pass *= 1 - p
	}
	ms += geo.PropagationDelayMs(km)
	return ms, 1 - pass, true
}
