# Tier-1 verification: formatting, vet, build, and the full test suite
# under the race detector. CI and pre-merge both run `make check`.
.PHONY: check test build fmt fuzz

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

fmt:
	gofmt -w .

# 30s smoke run of the journal-replay fuzzer: random record streams,
# truncations, and bit flips must never panic the recovery path.
fuzz:
	go test ./internal/journal -run '^$$' -fuzz '^FuzzJournalReplay$$' -fuzztime 30s
