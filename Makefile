# Tier-1 verification: formatting, vet, build, and the full test suite
# under the race detector. CI and pre-merge both run `make check`.
.PHONY: check test build fmt

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

fmt:
	gofmt -w .
