# Tier-1 verification: formatting, vet, build, and the full test suite
# under the race detector. CI and pre-merge both run `make check`.
.PHONY: check test build fmt fuzz bench chaos fleetsim-smoke

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

fmt:
	gofmt -w .

# Run the benchmark suites (root experiments + controller hot path) and
# fold min ns/op per benchmark into BENCH_PR9.json ("after" section;
# `scripts/bench.sh before` records the baseline), then the fleetsim
# load and bias runs. BENCH_COUNT / BENCH_TIME tune repetitions and
# benchtime; FLEET_PROBES / FLEET_DURATION scale the load run.
bench:
	./scripts/bench.sh

# Small fleet through both wire protocols under the race detector; the
# run asserts exactly-once completion and exits non-zero on violation.
# Also part of `make check`.
fleetsim-smoke:
	go run -race ./cmd/fleetsim -probes 1000 -duration 30s -tasks-per-probe 4 -workers 16

# 30s smoke runs of the replay fuzzers: random record streams,
# truncations, and bit flips must never panic the journal recovery path,
# the segment reader, or the archival measurement decoder.
fuzz:
	go test ./internal/journal -run '^$$' -fuzz '^FuzzJournalReplay$$' -fuzztime 30s
	go test ./internal/store -run '^$$' -fuzz '^FuzzSegmentReplay$$' -fuzztime 30s
	go test ./internal/archival -run '^$$' -fuzz '^FuzzArchivalDecode$$' -fuzztime 30s

# Long-timeline chaos drills under the race detector: link flaps,
# partitions, probe power cycles, and two controller crash/recovers on
# a seeded schedule, then federated shard kills/restarts/failovers on
# two seeds. CHAOS_SEED / CHAOS_ROUNDS pick the controller timeline;
# FED_CHAOS_SEED / FED_CHAOS_SEED2 / FED_CHAOS_ROUNDS the shard one.
CHAOS_SEED ?= 42
CHAOS_ROUNDS ?= 120
FED_CHAOS_SEED ?= 11
FED_CHAOS_SEED2 ?= 23
FED_CHAOS_ROUNDS ?= 80
chaos:
	OBS_CHAOS_SEED=$(CHAOS_SEED) OBS_CHAOS_ROUNDS=$(CHAOS_ROUNDS) \
	go test -race -count=1 -v -run '^TestChaosScheduleEndToEnd$$' ./internal/core
	OBS_FED_CHAOS_SEED=$(FED_CHAOS_SEED) OBS_FED_CHAOS_ROUNDS=$(FED_CHAOS_ROUNDS) \
	go test -race -count=1 -v -run '^TestShardChaosEndToEnd$$' ./internal/federation
	OBS_FED_CHAOS_SEED=$(FED_CHAOS_SEED2) OBS_FED_CHAOS_ROUNDS=$(FED_CHAOS_ROUNDS) \
	go test -race -count=1 -v -run '^TestShardChaosEndToEnd$$' ./internal/federation
